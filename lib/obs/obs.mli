(** Observability for the Minuet stack: typed metric handles, a closed
    abort-reason taxonomy, per-operation latency histograms, and trace
    spans with parent/child links — all exportable as JSON
    ({!Report.to_json}) so a benchmark trajectory can be tracked across
    changes.

    One [Obs.t] is owned by each simulated cluster
    ({!Sinfonia.Cluster.obs}); every layer above it (dynamic
    transactions, B-tree, snapshot service, sessions) records into it
    through the typed handles below. The string-keyed registry
    ({!Sim.Metrics}) survives only as the report/back-compat layer: hot
    paths never look a counter up by name. *)

module Json = Json

module Counter = Sim.Stats.Counter

(** {1 Abort taxonomy}

    Every way an operation can fail to make progress, as a closed
    variant (replacing the old ad-hoc counter names). Aborts are counted
    per (layer, reason); the same logical conflict may legitimately be
    counted at more than one layer (a failed minitransaction compare is
    a [Validation_failed] at the [Mtx] layer and again at the [Txn]
    layer that aborts because of it). *)
module Abort : sig
  type reason =
    | Lock_busy  (** Minitransaction lock collision; retried with backoff. *)
    | Validation_failed  (** A read-set compare failed: data changed underneath. *)
    | Fence_violation  (** Dirty traversal left the node's key-range fence. *)
    | Height_mismatch  (** Stale pointer led to a node at the wrong level. *)
    | Snapshot_stale  (** Node version not on the snapshot's path, or superseded. *)
    | Crashed_host  (** Memnode (and backup) unreachable. *)
    | Partitioned  (** A participant is behind an injected network partition. *)

  val all : reason list

  val to_string : reason -> string
  (** Stable snake_case name used in reports ("lock_busy", ...). *)

  type layer = Mtx | Txn | Btree | Scs

  val layers : layer list

  val layer_to_string : layer -> string
end

type t

val create : ?span_capacity:int -> unit -> t
(** [span_capacity] bounds the finished-span ring buffer (default
    65536); older spans are overwritten, aggregates are unaffected. *)

val metrics : t -> Sim.Metrics.t
(** The backing string-keyed registry (report layer). Typed handles
    below write into it, so legacy [Sim.Metrics.counter_value]
    inspection keeps working. *)

(** {1 Typed metric handles}

    Pre-registered at {!create}; incrementing one is a record-field read
    plus an integer bump — no string hashing on any hot path. *)

type mtx_stats = {
  committed_1pc : Counter.t;
  committed_2pc : Counter.t;
  busy_retries : Counter.t;
  compare_failed : Counter.t;
  retry_budget_exhausted : Counter.t;
  vote_epoch_aborts : Counter.t;
  mtx_unavailable : Counter.t;
  mirrors : Counter.t;
  orphans_released : Counter.t;
  crashes : Counter.t;
  recoveries : Counter.t;
}

type txn_stats = {
  commits : Counter.t;
  free_commits : Counter.t;
  validation_failures : Counter.t;
  retry_exhausted : Counter.t;
  txn_unavailable : Counter.t;
}

type btree_stats = {
  abort_fence : Counter.t;
  abort_version : Counter.t;
  abort_copied : Counter.t;
  abort_height : Counter.t;
  splits : Counter.t;
  root_splits : Counter.t;
  cow : Counter.t;
  discretionary_cow : Counter.t;
  op_retries : Counter.t;
  snapshots_created : Counter.t;
  branches_created : Counter.t;
  branches_deleted : Counter.t;
  chunk_reservations : Counter.t;
}

(** Proxy object-cache accounting ({!Dyntxn.Objcache}). Hits/misses were
    the only cache signals before; evictions (LRU + explicit
    invalidation), bulk evictions ({!Dyntxn.Objcache.clear} — a healthy
    run after a crash keeps this at 0) and the epoch-revalidation
    machinery are all first-class so crash-recovery cache behaviour
    shows up in every report. *)
type cache_stats = {
  cache_hits : Counter.t;
  cache_misses : Counter.t;
  cache_evictions : Counter.t;
      (** Entries dropped one at a time (LRU pressure or targeted
          invalidation after an abort). *)
  cache_bulk_evictions : Counter.t;
      (** Whole-cache flushes. Stays 0 when crash recovery relies on
          epoch revalidation instead of flushing. *)
  cache_stale_hits : Counter.t;
      (** Lookups that found an entry tagged with a pre-crash epoch. *)
  cache_epoch_revalidations : Counter.t;
      (** Stale-epoch entries lazily re-fetched and re-tagged. *)
  cache_epoch_survived : Counter.t;
      (** Revalidations whose sequence number was unchanged — the entry
          was still good and a bulk flush would have wasted it. *)
}

(** Batched-scan accounting (the leaf-chaining fast path in
    {!Btree.Ops}). *)
type scan_stats = {
  scan_batches : Counter.t;  (** Multi-leaf fetch rounds issued. *)
  scan_batched_leaves : Counter.t;  (** Leaves fetched via batch rounds. *)
  scan_continuations : Counter.t;
      (** Fence-key continuations: re-traversals after exhausting a
          parent's children. *)
  scan_prefetches : Counter.t;
      (** Batch fetches overlapped with consumption of the previous
          batch. *)
  scan_batch_aborts : Counter.t;
      (** Batches whose safety checks (fence continuity, height,
          version) failed, aborting the scan attempt. *)
}

(** Zero-copy node-view accounting (the slotted wire format,
    {!Btree.Bview}). [view_hits] counts traversal/scan hops answered in
    place from raw payload bytes; [materialisations] counts the
    write/split-path decodes into a full {!Btree.Bnode.t};
    [stamp_revalidations] counts epoch-stale cache entries revalidated
    by content stamp without re-decoding; [node_bytes_copied] counts
    bytes actually materialised into strings (scan results, write-path
    decodes) — the copy budget the bench gates on. *)
type node_stats = {
  view_hits : Counter.t;
  materialisations : Counter.t;
  stamp_revalidations : Counter.t;
  node_bytes_copied : Counter.t;
}

type gc_stats = { slots_reclaimed : Counter.t; branch_slots_reclaimed : Counter.t }

type scs_stats = {
  scs_created : Counter.t;
  scs_borrowed : Counter.t;
  scs_stale_reused : Counter.t;
}

type chaos_stats = {
  faults_injected : Counter.t;  (** Total faults injected by the chaos nemesis. *)
  crashes_injected : Counter.t;
  partitions_injected : Counter.t;
  delay_faults_injected : Counter.t;
  stalls_injected : Counter.t;
  scs_outages_injected : Counter.t;
  mid_crashes_injected : Counter.t;  (** Immediate crashes landing mid-2PC. *)
  mirror_partitions_injected : Counter.t;  (** memnode<->backup link partitions. *)
  replica_lags_injected : Counter.t;  (** Latency/loss injected on mirror links. *)
}

(** Redo-log and in-doubt recovery accounting (the Sinfonia recovery
    coordinator, {!Sinfonia.Cluster.start_recovery}). *)
type recovery_stats = {
  in_doubt_found : Counter.t;
      (** Distinct transactions that aged past the in-doubt grace. *)
  resolved_commit : Counter.t;  (** In-doubt transactions driven to commit. *)
  resolved_abort : Counter.t;  (** In-doubt transactions driven to abort. *)
  redo_replayed : Counter.t;
      (** Committed redo entries replayed into a replica image or a
          restored primary. *)
  mirror_skipped : Counter.t;
      (** Mirrors skipped (backup down, link partitioned, or source
          crashed mid-mirror); the redo log retains the entry. *)
  promotions : Counter.t;  (** Replica promotions that rolled the image forward. *)
}

val mtx : t -> mtx_stats

val txn : t -> txn_stats

val btree : t -> btree_stats

val cache : t -> cache_stats

val scan : t -> scan_stats

val node : t -> node_stats

val gc : t -> gc_stats

val scs : t -> scs_stats

val chaos : t -> chaos_stats

val recovery : t -> recovery_stats

val counter : t -> name:string -> Counter.t
(** Ad-hoc counter by name, resolved once at construction time by the
    caller and then used as a typed handle. Prefer the records above
    for the stack's own metrics. *)

val hist : t -> name:string -> Sim.Stats.Hist.t

(** {1 Abort accounting} *)

val abort : t -> layer:Abort.layer -> Abort.reason -> unit

val abort_count : t -> ?layer:Abort.layer -> Abort.reason -> int
(** Count for one layer, or summed over all layers when omitted. *)

val abort_counts : t -> (Abort.layer * Abort.reason * int) list
(** All nonzero cells of the (layer, reason) matrix. *)

(** {1 Per-operation latency} *)

module Op : sig
  type op = Get | Put | Remove | Scan | With_txn | Multi_get | Multi_put | Snapshot_req

  (** Whether the operation read the writable tip (strictly
      serializable) or a read-only snapshot. *)
  type path = Up_to_date | At_snapshot

  val all : op list

  val to_string : op -> string

  val label : op -> path -> string
  (** Report key: ["get"], ["get\@snapshot"], ... *)
end

val op_hist : t -> op:Op.op -> path:Op.path -> Sim.Stats.Hist.t
(** The latency histogram (seconds of simulated time) for one
    (operation, path) cell. *)

val observe_op : t -> op:Op.op -> path:Op.path -> float -> unit

val time_op : t -> op:Op.op -> path:Op.path -> (unit -> 'a) -> 'a
(** Run the thunk inside an operation span, recording its simulated
    duration into the cell's histogram on success (exceptions
    propagate; their duration is not recorded). *)

(** {1 Trace spans}

    Spans record simulated-time intervals with parent/child links: one
    [put] decomposes into its traversal, validation and commit spans.
    Parenting is implicit through the scheduler's per-process trace
    context, so spans nest correctly across [Sim.spawn]/[Sim.delay]
    boundaries without threading handles through every call. *)

module Span : sig
  type kind =
    | Op of Op.op * Op.path  (** Session-level operation. *)
    | Txn  (** One retrying dynamic transaction (all attempts). *)
    | Attempt  (** One optimistic attempt inside a {!Txn}. *)
    | Commit  (** Dynamic-transaction commit (validation + write-back). *)
    | Traversal  (** Root-to-leaf descent. *)
    | Scan_batch  (** One multi-leaf fetch round of a batched scan. *)
    | Mtx_exec  (** Single-memnode minitransaction (1PC fast path). *)
    | Mtx_prepare  (** Prepare phase of a 2PC minitransaction. *)
    | Mtx_commit  (** Commit phase of a 2PC minitransaction. *)
    | Snapshot_create  (** SCS executing Fig. 6. *)
    | Scs_request  (** Proxy-visible SCS snapshot request. *)
    | Fault of string
        (** One injected chaos fault ("crash", "partition", ...); the
            span covers injection through heal. *)
    | Recovery_sweep
        (** One pass of the in-doubt resolver over every space's redo
            log. *)

  val kind_to_string : kind -> string

  type outcome = Completed | Aborted of Abort.reason | Failed of string

  type t
  (** A live span handle. *)

  (** A finished span. [parent = 0] means the span was a root. *)
  type info = {
    id : int;
    parent : int;
    kind : kind;
    start : float;
    stop : float;
    outcome : outcome;
  }
end

val span_begin : t -> Span.kind -> Span.t
(** Starts a span whose parent is the calling process's current span,
    and makes it the current span. *)

val span_end : ?outcome:Span.outcome -> t -> Span.t -> unit
(** Finishes the span, restores its parent as current, records its
    duration into the per-kind histogram and appends it to the finished
    ring. Spans must end LIFO within a process; prefer {!with_span}. *)

val with_span : t -> ?outcome_of_exn:(exn -> Span.outcome option) -> Span.kind -> (unit -> 'a) -> 'a
(** Wrap a computation in a span. An escaping exception finishes the
    span with outcome [Failed] (or whatever [outcome_of_exn] maps it
    to) and is re-raised. *)

val spans : t -> Span.info list
(** Finished spans still in the ring, oldest first. *)

val clear_spans : t -> unit

(** {1 Reporting} *)

module Report : sig
  val to_json : ?name:string -> t -> Json.t
  (** Machine-readable snapshot: every counter, the (layer, reason)
      abort matrix, and p50/p95/p99/p999 latency summaries per
      operation and per span kind. Schema documented in DESIGN.md
      ("Observability"). *)

  val write : name:string -> ?dir:string -> t -> string
  (** Serialize {!to_json} into [<dir>/BENCH_<name>.json] (default
      [dir] is the current directory) and return the path. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable latency + abort tables ({!Db.pp_stats} embeds
      this). *)
end
