type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  emit buf t;
  Buffer.contents buf

let rec pp fmt = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> Format.pp_print_string fmt (to_string v)
  | List items ->
      Format.fprintf fmt "@[<v 2>[%a@]@,]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           (fun fmt v -> Format.fprintf fmt "@,%a" pp v))
        items
  | Obj fields ->
      Format.fprintf fmt "@[<v 2>{%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           (fun fmt (k, v) -> Format.fprintf fmt "@,%s: %a" (to_string (String k)) pp v))
        fields

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "invalid literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                c.pos <- c.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape %S" hex
                in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else
                  (* Only emitted for control characters by our writer;
                     preserve anything else as a replacement byte. *)
                  Buffer.add_char buf '?'
            | e -> fail "bad escape '\\%c'" e);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let text = String.sub c.src start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number %S at offset %d" text start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some ch when ch = '-' || (ch >= '0' && ch <= '9') -> parse_number c
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let parse src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail "trailing garbage at offset %d" c.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let string_value = function String s -> Some s | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | String x, String y -> String.equal x y
  | (Int _ | Float _), (Int _ | Float _) -> number a = number b
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | _ -> false
