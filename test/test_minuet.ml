(* Integration tests for the public Minuet API. *)

let check = Alcotest.check

let key i = Printf.sprintf "k%06d" i

let small_config = Minuet.Config.small_tree Minuet.Config.default

let run ?(config = small_config) f = Minuet.Harness.run ~config f

let test_quick_put_get () =
  run (fun db ->
      let s = Minuet.Session.attach db in
      Minuet.Session.put s "hello" "world";
      check (Alcotest.option Alcotest.string) "roundtrip" (Some "world")
        (Minuet.Session.get s "hello");
      check (Alcotest.option Alcotest.string) "miss" None (Minuet.Session.get s "absent"))

let test_sessions_share_data () =
  run (fun db ->
      let s0 = Minuet.Session.attach ~home:0 db in
      let s1 = Minuet.Session.attach ~home:1 db in
      Minuet.Session.put s0 (key 1) "from-s0";
      check (Alcotest.option Alcotest.string) "visible on other proxy" (Some "from-s0")
        (Minuet.Session.get s1 (key 1));
      Minuet.Session.put s1 (key 1) "from-s1";
      check (Alcotest.option Alcotest.string) "update visible back" (Some "from-s1")
        (Minuet.Session.get s0 (key 1)))

let test_scan_and_remove () =
  run (fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 49 do
        Minuet.Session.put s (key i) (string_of_int i)
      done;
      let r = Minuet.Session.scan s ~from:(key 20) ~count:5 in
      check
        (Alcotest.list Alcotest.string)
        "scan keys"
        [ key 20; key 21; key 22; key 23; key 24 ]
        (List.map fst r);
      check Alcotest.bool "remove" true (Minuet.Session.remove s (key 20));
      let r = Minuet.Session.scan s ~from:(key 20) ~count:2 in
      check (Alcotest.list Alcotest.string) "post-remove" [ key 21; key 22 ] (List.map fst r))

let test_multi_index () =
  let config = { small_config with Minuet.Config.n_trees = 2 } in
  run ~config (fun db ->
      let s = Minuet.Session.attach db in
      Minuet.Session.multi_put s [ (0, key 1, "a"); (1, key 1, "b") ];
      (match Minuet.Session.multi_get s [ (0, key 1); (1, key 1) ] with
      | [ Some "a"; Some "b" ] -> ()
      | _ -> Alcotest.fail "multi_get mismatch");
      check (Alcotest.option Alcotest.string) "index isolation" None
        (Minuet.Session.get ~index:(Minuet.Session.index db 1) s (key 2)))

let test_with_txn_read_your_writes () =
  run (fun db ->
      let s = Minuet.Session.attach db in
      Minuet.Session.put s (key 1) "old";
      let observed =
        Minuet.Session.with_txn s (fun tx ->
            let before = Minuet.Session.t_get tx (key 1) in
            Minuet.Session.t_put tx (key 1) "new";
            let after = Minuet.Session.t_get tx (key 1) in
            let removed = Minuet.Session.t_remove tx (key 2) in
            Minuet.Session.t_put tx (key 2) "two";
            (before, after, removed))
      in
      check
        (Alcotest.triple (Alcotest.option Alcotest.string) (Alcotest.option Alcotest.string)
           Alcotest.bool)
        "in-txn views" (Some "old", Some "new", false) observed;
      check (Alcotest.option Alcotest.string) "committed" (Some "new")
        (Minuet.Session.get s (key 1));
      check (Alcotest.option Alcotest.string) "second write" (Some "two")
        (Minuet.Session.get s (key 2)))

let test_with_txn_conserves_under_conflict () =
  (* Concurrent read-modify-write transfers on two accounts: OCC retries
     must prevent lost updates. *)
  run (fun db ->
      let s0 = Minuet.Session.attach db in
      Minuet.Session.put s0 "a" "1000";
      Minuet.Session.put s0 "b" "1000";
      let done_count = ref 0 in
      for w = 1 to 4 do
        let s = Minuet.Session.attach ~home:(w mod 4) db in
        Sim.spawn (fun () ->
            for _ = 1 to 25 do
              Minuet.Session.with_txn s (fun tx ->
                  let a = int_of_string (Option.get (Minuet.Session.t_get tx "a")) in
                  let b = int_of_string (Option.get (Minuet.Session.t_get tx "b")) in
                  Minuet.Session.t_put tx "a" (string_of_int (a - 1));
                  Minuet.Session.t_put tx "b" (string_of_int (b + 1)))
            done;
            incr done_count)
      done;
      Sim.delay 600.0;
      check Alcotest.int "workers done" 4 !done_count;
      let a = int_of_string (Option.get (Minuet.Session.get s0 "a")) in
      let b = int_of_string (Option.get (Minuet.Session.get s0 "b")) in
      check Alcotest.int "a drained" 900 a;
      check Alcotest.int "b filled" 1100 b)

let test_with_txn_cross_index () =
  let config = { small_config with Minuet.Config.n_trees = 2 } in
  run ~config (fun db ->
      let s = Minuet.Session.attach db in
      let idx0 = Minuet.Session.index db 0 and idx1 = Minuet.Session.index db 1 in
      Minuet.Session.with_txn s (fun tx ->
          Minuet.Session.t_put ~index:idx0 tx (key 1) "zero";
          Minuet.Session.t_put ~index:idx1 tx (key 1) "one";
          check (Alcotest.option Alcotest.string) "cross-index read" (Some "zero")
            (Minuet.Session.t_get ~index:idx0 tx (key 1)));
      check (Alcotest.option Alcotest.string) "idx0" (Some "zero")
        (Minuet.Session.get ~index:idx0 s (key 1));
      check (Alcotest.option Alcotest.string) "idx1" (Some "one")
        (Minuet.Session.get ~index:idx1 s (key 1)))

let test_snapshots_via_scs () =
  run (fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 29 do
        Minuet.Session.put s (key i) "v0"
      done;
      let snap = Minuet.Session.snapshot s in
      for i = 0 to 29 do
        Minuet.Session.put s (key i) "v1"
      done;
      check (Alcotest.option Alcotest.string) "snapshot stable" (Some "v0")
        (Minuet.Session.get_at s snap (key 0));
      let frozen = Minuet.Session.scan_at s snap ~from:"" ~count:100 in
      check Alcotest.int "snapshot scan count" 30 (List.length frozen);
      List.iter (fun (_, v) -> check Alcotest.string "frozen" "v0" v) frozen;
      check (Alcotest.option Alcotest.string) "tip current" (Some "v1")
        (Minuet.Session.get s (key 0)))

let test_snapshot_scan_during_updates () =
  run (fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 99 do
        Minuet.Session.put s (key i) "base"
      done;
      let writer = Minuet.Session.attach ~home:1 db in
      let writer_done = ref false in
      Sim.spawn (fun () ->
          for i = 0 to 99 do
            Minuet.Session.put writer (key i) "changed"
          done;
          writer_done := true);
      (* Concurrent snapshot scan: must see a consistent snapshot and
         never abort due to the updates. *)
      let snap = Minuet.Session.snapshot s in
      let r = Minuet.Session.scan_at s snap ~from:"" ~count:200 in
      check Alcotest.int "scan complete" 100 (List.length r);
      Sim.delay 600.0;
      check Alcotest.bool "writer finished" true !writer_done)

let test_baseline_mode_api () =
  let config = { small_config with Minuet.Config.mode = Btree.Ops.Validated_traversal } in
  run ~config (fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 49 do
        Minuet.Session.put s (key i) (string_of_int i)
      done;
      for i = 0 to 49 do
        check (Alcotest.option Alcotest.string) (key i) (Some (string_of_int i))
          (Minuet.Session.get s (key i))
      done)

let test_branching_api () =
  let config = { small_config with Minuet.Config.branching = true } in
  run ~config (fun db ->
      let s = Minuet.Session.attach db in
      let br = Minuet.Session.branching s in
      Mvcc.Branching.put br (key 1) "main";
      let clone = Mvcc.Branching.create_branch br ~from:0L in
      Mvcc.Branching.put br ~at:clone (key 1) "what-if";
      check (Alcotest.option Alcotest.string) "original frozen" (Some "main")
        (Mvcc.Branching.get br ~at:0L (key 1));
      check (Alcotest.option Alcotest.string) "clone diverged" (Some "what-if")
        (Mvcc.Branching.get br ~at:clone (key 1));
      (* Linear snapshot ops are rejected on a branching database. *)
      match Minuet.Session.get s (key 1) with
      | (_ : string option) -> Alcotest.fail "linear op on branching db should fail"
      | exception Invalid_argument _ -> ())

let test_failover_during_workload () =
  run (fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 49 do
        Minuet.Session.put s (key i) "before"
      done;
      Minuet.Db.crash_host db 2;
      (* All data remains readable and writable through the replicas. *)
      for i = 0 to 49 do
        check (Alcotest.option Alcotest.string) "read after crash" (Some "before")
          (Minuet.Session.get s (key i))
      done;
      for i = 0 to 49 do
        Minuet.Session.put s (key i) "after"
      done;
      Minuet.Db.recover_host db 2;
      for i = 0 to 49 do
        check (Alcotest.option Alcotest.string) "read after recovery" (Some "after")
          (Minuet.Session.get s (key i))
      done)

let test_mixed_load_many_sessions () =
  run (fun db ->
      let sessions = List.init 4 (fun h -> Minuet.Session.attach ~home:h db) in
      let done_count = ref 0 in
      List.iteri
        (fun idx s ->
          Sim.spawn (fun () ->
              for i = 0 to 39 do
                Minuet.Session.put s (key ((idx * 100) + i)) (Printf.sprintf "p%d" idx)
              done;
              incr done_count))
        sessions;
      Sim.delay 600.0;
      check Alcotest.int "all sessions done" 4 !done_count;
      let s = List.hd sessions in
      let all = Minuet.Session.scan s ~from:"" ~count:1000 in
      check Alcotest.int "all present" 160 (List.length all))

let test_snapshot_staleness_bound () =
  (* With scs_min_interval = k, snapshot requests within k seconds reuse
     the same (stale but consistent) snapshot — Sec. 6.3's trade-off. *)
  let config = { small_config with Minuet.Config.scs_min_interval = 5.0 } in
  run ~config (fun db ->
      let s = Minuet.Session.attach db in
      Minuet.Session.put s (key 1) "v0";
      let snap1 = Minuet.Session.snapshot s in
      Minuet.Session.put s (key 1) "v1";
      Sim.delay 1.0;
      let snap2 = Minuet.Session.snapshot s in
      check Alcotest.int64 "reused within k" snap1.Minuet.Session.sid snap2.Minuet.Session.sid;
      check (Alcotest.option Alcotest.string) "stale view" (Some "v0")
        (Minuet.Session.get_at s snap2 (key 1));
      Sim.delay 6.0;
      let snap3 = Minuet.Session.snapshot s in
      check Alcotest.bool "fresh after k" true
        (Int64.compare snap3.Minuet.Session.sid snap1.Minuet.Session.sid > 0);
      check (Alcotest.option Alcotest.string) "fresh view" (Some "v1")
        (Minuet.Session.get_at s snap3 (key 1)))

let test_enable_gc () =
  Minuet.Harness.run ~until:200.0 ~config:small_config (fun db ->
      Minuet.Db.enable_gc ~interval:2.0 ~keep:1 db;
      let s = Minuet.Session.attach db in
      for i = 0 to 29 do
        Minuet.Session.put s (key i) "v0"
      done;
      (* Several snapshot generations with full rewrites in between. *)
      for round = 1 to 4 do
        let (_ : Minuet.Session.snapshot) = Minuet.Session.snapshot s in
        for i = 0 to 29 do
          Minuet.Session.put s (key i) (Printf.sprintf "v%d" round)
        done;
        Sim.delay 3.0
      done;
      Sim.delay 5.0;
      check Alcotest.bool "old versions reclaimed" true
        (Sim.Metrics.counter_value (Minuet.Db.metrics db) "gc.slots_reclaimed" > 0);
      (* The tip remains fully intact. *)
      let all = Minuet.Session.scan s ~from:"" ~count:100 in
      check Alcotest.int "tip intact" 30 (List.length all);
      List.iter (fun (_, v) -> check Alcotest.string "latest round" "v4" v) all;
      Sim.stop ())

let test_deterministic_replay () =
  (* The whole distributed system is a pure function of the seed: two
     identical runs produce identical contents AND identical metrics. *)
  let run_once () =
    Minuet.Harness.run ~seed:123 ~config:small_config (fun db ->
        let s = Minuet.Session.attach db in
        let rng = Sim.Rng.create 9 in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              for i = 0 to 60 do
                Minuet.Session.put s (key (Sim.Rng.int rng 40)) (string_of_int i)
              done)
        done;
        Sim.delay 600.0;
        let contents = Minuet.Session.scan s ~from:"" ~count:1000 in
        (contents, Sim.Metrics.counters (Minuet.Db.metrics db)))
  in
  let a = run_once () and b = run_once () in
  check Alcotest.bool "identical contents" true (fst a = fst b);
  check Alcotest.bool "identical metrics" true (snd a = snd b)

let test_different_seeds_diverge () =
  let run_with seed =
    Minuet.Harness.run ~seed ~config:small_config (fun db ->
        let s = Minuet.Session.attach db in
        for i = 0 to 20 do
          Minuet.Session.put s (key i) "x"
        done;
        Sim.now ())
  in
  (* Timing (jitter) differs across seeds even though results agree. *)
  check Alcotest.bool "timing differs" true (run_with 1 <> run_with 2)

let test_harness_returns_value () =
  let v = run (fun _db -> 42) in
  check Alcotest.int "returned" 42 v

let test_config_validation () =
  (match Minuet.Harness.run ~config:{ small_config with Minuet.Config.hosts = 0 } (fun _ -> ()) with
  | () -> Alcotest.fail "hosts=0 accepted"
  | exception Invalid_argument _ -> ());
  match
    Minuet.Harness.run ~config:{ small_config with Minuet.Config.n_trees = 1000 } (fun _ -> ())
  with
  | () -> Alcotest.fail "n_trees too large accepted"
  | exception Invalid_argument _ -> ()

let test_chaos_mixed_everything () =
  (* Everything at once: writers, deleters, snapshot-scanning analysts,
     a memnode crash and recovery — then a full structural audit. *)
  Minuet.Harness.run ~until:3600.0 ~config:small_config (fun db ->
      Minuet.Db.enable_gc ~interval:1.0 ~keep:4 db;
      let seed_session = Minuet.Session.attach db in
      for i = 0 to 149 do
        Minuet.Session.put seed_session (key i) "seed"
      done;
      let writers_done = ref 0 and scans_ok = ref 0 and scan_sizes_bad = ref 0 in
      let gave_up = ref 0 in
      for w = 0 to 3 do
        let s = Minuet.Session.attach ~home:w db in
        let rng = Sim.Rng.create (w + 100) in
        Sim.spawn (fun () ->
            for _ = 1 to 150 do
              let k = key (Sim.Rng.int rng 150) in
              (* Under this duress (a snapshot every 25 ms, a crashed
                 memnode) an operation may exhaust its retry budget;
                 that must stay rare and must never corrupt anything. *)
              try
                if Sim.Rng.int rng 10 < 8 then Minuet.Session.put s k "chaos"
                else ignore (Minuet.Session.remove s k : bool)
              with Btree.Ops.Too_contended _ -> incr gave_up
            done;
            incr writers_done)
      done;
      (* Analysts: snapshot scans must always be internally consistent
         (every value fully written, count within bounds). *)
      for a = 0 to 1 do
        let s = Minuet.Session.attach ~home:a db in
        Sim.spawn (fun () ->
            for _ = 1 to 10 do
              Sim.delay 0.025;
              let snap = Minuet.Session.snapshot s in
              let rows = Minuet.Session.scan_at s snap ~from:"" ~count:1000 in
              if List.length rows > 150 then incr scan_sizes_bad;
              if List.for_all (fun (_, v) -> v = "seed" || v = "chaos") rows then
                incr scans_ok
              else incr scan_sizes_bad
            done)
      done;
      (* A crash in the middle of all this. *)
      Sim.spawn (fun () ->
          Sim.delay 0.05;
          Minuet.Db.crash_host db 3;
          Sim.delay 0.2;
          Minuet.Db.recover_host db 3);
      Sim.delay 1200.0;
      check Alcotest.int "writers done" 4 !writers_done;
      check Alcotest.bool "give-ups are rare" true (!gave_up < 30);
      check Alcotest.int "all snapshot scans consistent" 20 !scans_ok;
      check Alcotest.int "no anomalies" 0 !scan_sizes_bad;
      (* Structural audit of the final tip. *)
      let tree =
        Minuet.Session.tree_of seed_session
          (Minuet.Session.index (Minuet.Session.db seed_session) 0)
      in
      let txn = Dyntxn.Txn.begin_ (Btree.Ops.cluster tree) in
      let sid, root = Btree.Ops.Linear.read_tip tree txn in
      (match Dyntxn.Txn.commit txn with _ -> ());
      let entries = Btree.Ops.audit tree ~sid ~root in
      check Alcotest.bool "audit passes with plausible count" true
        (List.length entries <= 150);
      Sim.stop ())

let () =
  Alcotest.run "minuet"
    [
      ( "api",
        [
          Alcotest.test_case "put/get" `Quick test_quick_put_get;
          Alcotest.test_case "sessions share data" `Quick test_sessions_share_data;
          Alcotest.test_case "scan and remove" `Quick test_scan_and_remove;
          Alcotest.test_case "multi index" `Quick test_multi_index;
          Alcotest.test_case "with_txn read-your-writes" `Quick test_with_txn_read_your_writes;
          Alcotest.test_case "with_txn no lost updates" `Quick
            test_with_txn_conserves_under_conflict;
          Alcotest.test_case "with_txn cross index" `Quick test_with_txn_cross_index;
          Alcotest.test_case "harness returns value" `Quick test_harness_returns_value;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "seeds diverge" `Quick test_different_seeds_diverge;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "via SCS" `Quick test_snapshots_via_scs;
          Alcotest.test_case "staleness bound" `Quick test_snapshot_staleness_bound;
          Alcotest.test_case "scan during updates" `Quick test_snapshot_scan_during_updates;
        ] );
      ( "modes",
        [
          Alcotest.test_case "baseline mode" `Quick test_baseline_mode_api;
          Alcotest.test_case "branching mode" `Quick test_branching_api;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "background gc" `Quick test_enable_gc;
          Alcotest.test_case "chaos" `Quick test_chaos_mixed_everything;
          Alcotest.test_case "failover" `Quick test_failover_during_workload;
          Alcotest.test_case "mixed load" `Quick test_mixed_load_many_sessions;
        ] );
    ]
