(* Tests for the open-loop traffic engine: arrival-schedule determinism
   and independence, spike placement, SLO evaluation, and small
   end-to-end scenarios through the engine and streaming checker. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Arrival schedules                                                    *)
(* ------------------------------------------------------------------ *)

let diurnal_with_spike () =
  Traffic.Arrival.diurnal ~base:50.0 ~peak:400.0 ~period:2.0
    ~spikes:[ { Traffic.Arrival.at = 0.5; duration = 0.25; factor = 5.0 } ]
    ()

let test_schedule_deterministic () =
  (* Same seed and tenant id: byte-identical schedules, including under
     Poisson arrivals, spikes and a diurnal curve. *)
  let a = diurnal_with_spike () in
  let s1 = Traffic.Arrival.schedule a ~seed:42 ~tenant_id:3 ~until:2.0 in
  let s2 = Traffic.Arrival.schedule a ~seed:42 ~tenant_id:3 ~until:2.0 in
  check Alcotest.int "same length" (Array.length s1) (Array.length s2);
  Array.iteri (fun i t -> check (Alcotest.float 0.0) (string_of_int i) t s2.(i)) s1;
  check Alcotest.bool "nonempty" true (Array.length s1 > 0);
  (* Ascending, within horizon. *)
  Array.iteri
    (fun i t ->
      check Alcotest.bool "in horizon" true (t >= 0.0 && t < 2.0);
      if i > 0 then check Alcotest.bool "ascending" true (s1.(i - 1) <= t))
    s1

let test_schedule_tenant_independent () =
  (* Different tenant ids draw from split streams: changing the id
     changes the schedule, and tenant 3's schedule does not depend on
     how many other tenants exist (it is a pure function of
     (seed, tenant_id), not of spawn order). *)
  let a = diurnal_with_spike () in
  let s3 = Traffic.Arrival.schedule a ~seed:42 ~tenant_id:3 ~until:2.0 in
  let s4 = Traffic.Arrival.schedule a ~seed:42 ~tenant_id:4 ~until:2.0 in
  let same =
    Array.length s3 = Array.length s4
    && Array.for_all (fun x -> x) (Array.mapi (fun i t -> t = s4.(i)) s3)
  in
  check Alcotest.bool "tenant 3 and 4 differ" false same;
  (* Recomputing tenant 3 gives the same stream regardless of whether
     tenant 4 was ever scheduled. *)
  let s3' = Traffic.Arrival.schedule a ~seed:42 ~tenant_id:3 ~until:2.0 in
  Array.iteri (fun i t -> check (Alcotest.float 0.0) (string_of_int i) t s3'.(i)) s3

let test_seed_changes_schedule () =
  let a = Traffic.Arrival.constant 300.0 in
  let s1 = Traffic.Arrival.schedule a ~seed:1 ~tenant_id:0 ~until:1.0 in
  let s2 = Traffic.Arrival.schedule a ~seed:2 ~tenant_id:0 ~until:1.0 in
  let same =
    Array.length s1 = Array.length s2
    && Array.for_all (fun x -> x) (Array.mapi (fun i t -> t = s2.(i)) s1)
  in
  check Alcotest.bool "seeds differ" false same

let test_paced_is_periodic () =
  let a = Traffic.Arrival.constant ~law:`Paced 100.0 in
  let s = Traffic.Arrival.schedule a ~seed:9 ~tenant_id:0 ~until:1.0 in
  (* Arrivals at 0.01, 0.02, ..., 0.99: the t = 1.0 tick is outside the
     half-open horizon. *)
  check Alcotest.int "99 arrivals" 99 (Array.length s);
  Array.iteri
    (fun i t ->
      if i > 0 then
        check Alcotest.bool "10ms gaps" true (abs_float (t -. s.(i - 1) -. 0.01) < 1e-9))
    s

let test_flash_crowd_spike_lands () =
  (* A 4x spike over [0.5, 0.75) on a 200/s base: the spike window must
     hold ~4x the arrivals of the preceding quarter-second, and the
     rate curve itself must report the multiplied rate only inside the
     window. *)
  let spike = { Traffic.Arrival.at = 0.5; duration = 0.25; factor = 4.0 } in
  let a = Traffic.Arrival.constant ~spikes:[ spike ] 200.0 in
  check (Alcotest.float 1e-9) "rate before" 200.0 (Traffic.Arrival.rate_at a 0.49);
  check (Alcotest.float 1e-9) "rate inside" 800.0 (Traffic.Arrival.rate_at a 0.5);
  check (Alcotest.float 1e-9) "rate inside late" 800.0 (Traffic.Arrival.rate_at a 0.74);
  check (Alcotest.float 1e-9) "rate after" 200.0 (Traffic.Arrival.rate_at a 0.75);
  let s = Traffic.Arrival.schedule a ~seed:5 ~tenant_id:1 ~until:1.0 in
  let count lo hi = Array.fold_left (fun n t -> if t >= lo && t < hi then n + 1 else n) 0 s in
  let before = count 0.25 0.5 and inside = count 0.5 0.75 in
  check Alcotest.bool "spike multiplies arrivals" true
    (float_of_int inside > 2.5 *. float_of_int before);
  check Alcotest.bool "spike is bounded" true
    (float_of_int inside < 6.0 *. float_of_int before)

let test_diurnal_rate_curve () =
  let a = Traffic.Arrival.diurnal ~base:100.0 ~peak:500.0 ~period:1.0 ~phase:(-1.5707963) () in
  (* Phase -pi/2: trough at t=0, crest at t=period/2. *)
  check Alcotest.bool "trough at 0" true (abs_float (Traffic.Arrival.rate_at a 0.0 -. 100.0) < 1.0);
  check Alcotest.bool "crest at half period" true
    (abs_float (Traffic.Arrival.rate_at a 0.5 -. 500.0) < 1.0)

(* ------------------------------------------------------------------ *)
(* SLO evaluation                                                       *)
(* ------------------------------------------------------------------ *)

let test_slo_verdicts () =
  (* 0.33% of ops are 50ms stragglers (safely above the 0.1% tail), the
     rest 2ms: p99 stays in the bulk, p999 lands on the stragglers. *)
  let h = Sim.Stats.Hist.create () in
  for _ = 1 to 2990 do
    Sim.Stats.Hist.add h 0.002
  done;
  for _ = 1 to 10 do
    Sim.Stats.Hist.add h 0.050
  done;
  let slo = Traffic.Slo.make ~p99_ms:10.0 ~p999_ms:60.0 ~max_error_rate:0.01 () in
  let v = Traffic.Slo.evaluate slo ~latency:h ~offered:3000 ~errors:15 in
  check Alcotest.bool "met" true (Traffic.Slo.ok v);
  (* Tighten p999 below the straggler: breached. *)
  let tight = Traffic.Slo.make ~p99_ms:10.0 ~p999_ms:20.0 ~max_error_rate:0.01 () in
  let v = Traffic.Slo.evaluate tight ~latency:h ~offered:3000 ~errors:0 in
  check Alcotest.bool "p999 breached" false (Traffic.Slo.ok v);
  (* Blow the error budget. *)
  let v = Traffic.Slo.evaluate slo ~latency:h ~offered:3000 ~errors:150 in
  check Alcotest.bool "error budget breached" false (Traffic.Slo.ok v);
  check Alcotest.bool "breach names error rate" true
    (List.exists
       (fun b -> String.length b >= 10 && String.sub b 0 10 = "error rate")
       v.Traffic.Slo.breaches)

(* ------------------------------------------------------------------ *)
(* Engine end to end                                                    *)
(* ------------------------------------------------------------------ *)

let small_scenario ?(law = `Poisson) ?(concurrency = 4) ?(rate = 300.0) ?slo () =
  {
    Traffic.Engine.default with
    Traffic.Engine.name = "test";
    seed = 11;
    duration = 0.4;
    tenants =
      [
        Traffic.Tenant.make "t0" ~keys:96 ~mix:Traffic.Tenant.update_heavy ~concurrency
          ~arrival:(Traffic.Arrival.constant ~law rate)
          ?slo;
        Traffic.Tenant.make "t1" ~keys:96 ~mix:Traffic.Tenant.scan_heavy ~scan_count:6
          ~concurrency:3
          ~arrival:(Traffic.Arrival.constant ~law 100.0);
      ];
  }

let test_engine_smoke_checked () =
  let r = Traffic.Engine.run (small_scenario ()) in
  check Alcotest.bool "passed" true (Traffic.Engine.passed r);
  check Alcotest.bool "checker ok" true (Check.Stream.ok r.Traffic.Engine.verdict);
  check Alcotest.int "no audit failures" 0 (List.length r.Traffic.Engine.audit_failures);
  List.iter
    (fun (t : Traffic.Engine.tenant_result) ->
      check Alcotest.bool "offered > 0" true (t.Traffic.Engine.offered > 0);
      (* Open loop drains everything: each offered op either completed
         or errored; none vanish. *)
      check Alcotest.int "all ops accounted"
        t.Traffic.Engine.offered
        (t.Traffic.Engine.completed + t.Traffic.Engine.errors);
      check Alcotest.int "queueing recorded per offered op" t.Traffic.Engine.offered
        (Sim.Stats.Hist.count t.Traffic.Engine.queueing))
    r.Traffic.Engine.tenants;
  check Alcotest.bool "events flowed" true (r.Traffic.Engine.events > 0)

let test_engine_deterministic () =
  let r1 = Traffic.Engine.run (small_scenario ()) in
  let r2 = Traffic.Engine.run (small_scenario ()) in
  List.iter2
    (fun (a : Traffic.Engine.tenant_result) (b : Traffic.Engine.tenant_result) ->
      check Alcotest.int "completed equal" a.Traffic.Engine.completed
        b.Traffic.Engine.completed;
      check (Alcotest.float 0.0) "p99 equal"
        (Sim.Stats.Hist.quantile a.Traffic.Engine.latency 0.99)
        (Sim.Stats.Hist.quantile b.Traffic.Engine.latency 0.99))
    r1.Traffic.Engine.tenants r2.Traffic.Engine.tenants;
  check Alcotest.int "events equal" r1.Traffic.Engine.events r2.Traffic.Engine.events

let test_engine_underprovision_breaches_slo () =
  (* One worker against a paced 800/s stream of scans: the queue grows
     without bound, so open-loop p99 must blow through a 5ms target even
     though each individual op is fast — the queueing-delay accounting
     at work. *)
  let cfg =
    {
      Traffic.Engine.default with
      Traffic.Engine.name = "underprov";
      seed = 11;
      duration = 0.4;
      tenants =
        [
          Traffic.Tenant.make "u" ~keys:96 ~mix:Traffic.Tenant.scan_heavy ~scan_count:24
            ~concurrency:1
            ~arrival:(Traffic.Arrival.constant ~law:`Paced 3000.0)
            ~slo:(Traffic.Slo.make ~p99_ms:5.0 ~p999_ms:10.0 ~max_error_rate:0.01 ());
        ];
    }
  in
  let r = Traffic.Engine.run cfg in
  check Alcotest.bool "checker still ok" true (Check.Stream.ok r.Traffic.Engine.verdict);
  check Alcotest.bool "SLO breached" false (Traffic.Engine.slo_ok r);
  check Alcotest.bool "run failed overall" false (Traffic.Engine.passed r);
  let t = List.hd r.Traffic.Engine.tenants in
  check Alcotest.bool "queueing dominates" true
    (Sim.Stats.Hist.quantile t.Traffic.Engine.queueing 0.99
    > Sim.Stats.Hist.quantile t.Traffic.Engine.service 0.99)

let test_scenarios_catalogued () =
  check Alcotest.int "seven canned scenarios" 7 (List.length Traffic.Scenario.all);
  List.iter
    (fun (name, s) ->
      let cfg = s ~seed:1 ~duration:1.0 in
      check Alcotest.string "name matches" name cfg.Traffic.Engine.name;
      check Alcotest.bool "has tenants" true (cfg.Traffic.Engine.tenants <> []))
    Traffic.Scenario.all;
  (* The falsifiability twin exists but is not in the default suite. *)
  check Alcotest.bool "broken-slo resolvable" true
    (let cfg = Traffic.Scenario.find "broken-slo" ~seed:1 ~duration:1.0 in
     cfg.Traffic.Engine.name = "broken-slo");
  check Alcotest.bool "broken-slo not canned" true
    (not (List.mem_assoc "broken-slo" Traffic.Scenario.all));
  match Traffic.Scenario.find "no-such" with
  | (_ : seed:int -> duration:float -> Traffic.Engine.config) ->
      Alcotest.fail "unknown scenario accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "traffic"
    [
      ( "arrival",
        [
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "tenant independent" `Quick test_schedule_tenant_independent;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
          Alcotest.test_case "paced periodic" `Quick test_paced_is_periodic;
          Alcotest.test_case "flash-crowd spike" `Quick test_flash_crowd_spike_lands;
          Alcotest.test_case "diurnal curve" `Quick test_diurnal_rate_curve;
        ] );
      ("slo", [ Alcotest.test_case "verdicts" `Quick test_slo_verdicts ]);
      ( "engine",
        [
          Alcotest.test_case "smoke through checker" `Quick test_engine_smoke_checked;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "underprovision breaches SLO" `Quick
            test_engine_underprovision_breaches_slo;
          Alcotest.test_case "scenario catalogue" `Quick test_scenarios_catalogued;
        ] );
    ]
