(* End-to-end tests for the chaos engine: deterministic replay, clean
   runs verified by the history checker, the deliberately-broken mode
   being caught, and a qcheck property over random chaos schedules
   (whose shrinking minimises the seed and the fault mix). *)

module Runner = Chaos.Runner
module Nemesis = Chaos.Nemesis

let check = Alcotest.check

let small ?(seed = 11) ?(duration = 0.3) ?(kinds = Nemesis.all_kinds) ?(broken = false)
    ?(broken_recovery = false) ?(scs_k = 0.0) () =
  {
    Runner.default with
    Runner.seed;
    duration;
    hosts = 3;
    clients = 4;
    keys = 48;
    hot_keys = 6;
    phases = 1;
    kinds;
    broken;
    broken_recovery;
    scs_k;
  }

let report_string r = Format.asprintf "%a" Runner.pp_report r

let test_clean_run_passes () =
  let r = Runner.run (small ()) in
  if not (Runner.passed r) then Alcotest.failf "chaos run failed:@.%a" Runner.pp_report r;
  check Alcotest.bool "ops ran" true (r.Runner.verdict.Check.Checker.ops_checked > 0);
  check Alcotest.bool "history recorded" true (r.Runner.events > 0);
  check Alcotest.bool "audits ran" true (r.Runner.audits > 0)

let test_faults_injected () =
  let r = Runner.run (small ~duration:0.5 ()) in
  let total = List.assoc "total" r.Runner.fault_counts in
  check Alcotest.bool "faults injected" true (total > 0)

let test_no_fault_baseline () =
  let r = Runner.run (small ~kinds:[] ()) in
  if not (Runner.passed r) then Alcotest.failf "baseline failed:@.%a" Runner.pp_report r;
  check Alcotest.int "no faults" 0 (List.assoc "total" r.Runner.fault_counts)

let test_deterministic_replay () =
  (* A whole run is a pure function of its seed: the full report —
     workload counts, fault schedule, history size, verdict — must be
     byte-identical across runs. *)
  let cfg = small ~seed:23 ~duration:0.4 () in
  let a = report_string (Runner.run cfg) in
  let b = report_string (Runner.run cfg) in
  check Alcotest.string "same seed, same report" a b;
  let c = report_string (Runner.run { cfg with Runner.seed = 24 }) in
  check Alcotest.bool "different seed, different run" true (a <> c)

let test_each_kind_alone () =
  List.iter
    (fun kind ->
      let r = Runner.run (small ~kinds:[ kind ] ()) in
      if not (Runner.passed r) then
        Alcotest.failf "run with only %s faults failed:@.%a" (Nemesis.kind_to_string kind)
          Runner.pp_report r)
    Nemesis.all_kinds

let test_broken_mode_caught () =
  (* unsafe_dirty_leaf_reads skips leaf validation on read-only
     traversals; the checker must catch the resulting stale reads and
     report a counterexample. *)
  let r = Runner.run (small ~seed:11 ~duration:0.5 ~broken:true ()) in
  check Alcotest.bool "broken run fails" false (Runner.passed r);
  check Alcotest.bool "violations reported" true
    (r.Runner.verdict.Check.Checker.violations <> []);
  (* The counterexample names the operation that exposed the bug. *)
  let first = List.hd r.Runner.verdict.Check.Checker.violations in
  check Alcotest.bool "counterexample has the event" true
    (first.Check.Checker.v_event <> None)

let test_broken_recovery_caught () =
  (* broken_recovery skips the redo-log replay when a replica is
     promoted or a crashed primary is restored, so committed writes
     whose mirror never arrived are silently lost. Under mid-2PC
     crashes the run must fail — either the checker reports lost
     updates, a structural audit catches a torn tree, or the corruption
     crashes the run outright (also reported as a failure). *)
  let r =
    Runner.run
      (small ~seed:7 ~duration:0.5
         ~kinds:[ Nemesis.Mid_crash; Nemesis.Replica_lag ]
         ~broken_recovery:true ())
  in
  check Alcotest.bool "broken recovery caught" false (Runner.passed r)

let test_staleness_bound_passes () =
  (* With a staleness bound k > 0 the checker relaxes the SCS rule by
     exactly k rather than dropping it; a clean run must still pass. *)
  let r = Runner.run (small ~seed:5 ~scs_k:0.02 ()) in
  if not (Runner.passed r) then Alcotest.failf "staleness run failed:@.%a" Runner.pp_report r

let test_twopc_records_checked () =
  (* Chaos runs retain every 2PC decision record; the final verdict
     must actually cross-check them. *)
  let r = Runner.run (small ~kinds:[ Nemesis.Mid_crash ] ()) in
  if not (Runner.passed r) then Alcotest.failf "midcrash run failed:@.%a" Runner.pp_report r;
  check Alcotest.bool "2pc records checked" true
    (r.Runner.verdict.Check.Checker.twopc_checked > 0)

let test_kind_names_roundtrip () =
  List.iter
    (fun kind ->
      match Nemesis.kind_of_string (Nemesis.kind_to_string kind) with
      | Some k -> check Alcotest.bool "roundtrip" true (k = kind)
      | None -> Alcotest.failf "kind %s does not roundtrip" (Nemesis.kind_to_string kind))
    Nemesis.all_kinds;
  check Alcotest.bool "unknown rejected" true (Nemesis.kind_of_string "meteor" = None)

(* Any short chaos schedule — any seed, any subset of fault kinds — must
   produce a history the checker accepts. On failure qcheck shrinks the
   schedule: the seed toward 0 and the fault mask toward the empty mix,
   yielding a minimal failing configuration. *)
let prop_any_schedule_passes =
  QCheck.Test.make ~name:"any chaos schedule passes the checker" ~count:6
    QCheck.(pair (int_bound 999) (int_bound 255))
    (fun (seed, mask) ->
      let kinds =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) Nemesis.all_kinds
      in
      let r = Runner.run (small ~seed ~duration:0.2 ~kinds ()) in
      Runner.passed r)

let () =
  Alcotest.run "chaos"
    [
      ( "runner",
        [
          Alcotest.test_case "clean run passes" `Quick test_clean_run_passes;
          Alcotest.test_case "faults injected" `Quick test_faults_injected;
          Alcotest.test_case "no-fault baseline" `Quick test_no_fault_baseline;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "each kind alone" `Quick test_each_kind_alone;
          Alcotest.test_case "broken mode caught" `Quick test_broken_mode_caught;
          Alcotest.test_case "broken recovery caught" `Quick test_broken_recovery_caught;
          Alcotest.test_case "staleness bound passes" `Quick test_staleness_bound_passes;
          Alcotest.test_case "2pc records checked" `Quick test_twopc_records_checked;
          Alcotest.test_case "kind names roundtrip" `Quick test_kind_names_roundtrip;
        ] );
      ( "schedules",
        [ QCheck_alcotest.to_alcotest prop_any_schedule_passes ] );
    ]
