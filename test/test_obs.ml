(* The observability layer: typed counters backed by the legacy
   registry, the (layer, reason) abort taxonomy, span nesting across
   retries, and the JSON report round-trip. *)

let check = Alcotest.check

let small_config = Minuet.Config.small_tree Minuet.Config.default

(* ------------------------------------------------------------------ *)
(* Typed handles and the abort matrix (no simulation needed)            *)
(* ------------------------------------------------------------------ *)

let test_typed_counters () =
  let obs = Obs.create () in
  Obs.Counter.incr (Obs.txn obs).Obs.commits;
  Obs.Counter.add (Obs.btree obs).Obs.splits 3;
  (* Typed handles write into the string registry under the legacy
     names, so old-style inspection sees the same numbers. *)
  check Alcotest.int "txn.commits via registry" 1
    (Sim.Metrics.counter_value (Obs.metrics obs) "txn.commits");
  check Alcotest.int "btree.splits via registry" 3
    (Sim.Metrics.counter_value (Obs.metrics obs) "btree.splits")

let test_abort_matrix () =
  let obs = Obs.create () in
  check Alcotest.int "empty" 0 (Obs.abort_count obs Obs.Abort.Lock_busy);
  Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy;
  Obs.abort obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy;
  Obs.abort obs ~layer:Obs.Abort.Txn Obs.Abort.Lock_busy;
  Obs.abort obs ~layer:Obs.Abort.Btree Obs.Abort.Fence_violation;
  check Alcotest.int "per layer" 2 (Obs.abort_count obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy);
  check Alcotest.int "summed over layers" 3 (Obs.abort_count obs Obs.Abort.Lock_busy);
  check Alcotest.int "other reason" 1 (Obs.abort_count obs Obs.Abort.Fence_violation);
  check Alcotest.int "nonzero cells" 3 (List.length (Obs.abort_counts obs));
  (* The matrix is also visible through the registry. *)
  check Alcotest.int "registry name" 2
    (Sim.Metrics.counter_value (Obs.metrics obs) "abort.mtx.lock_busy")

(* ------------------------------------------------------------------ *)
(* Span nesting                                                         *)
(* ------------------------------------------------------------------ *)

(* A with_txn whose first attempt is invalidated by a conflicting
   write decomposes into one operation span -> one transaction span ->
   N >= 2 attempt spans, the first of which did not complete. *)
let test_span_nesting_with_retry () =
  Minuet.Harness.run ~config:small_config (fun db ->
      let s1 = Minuet.Session.attach db in
      let s2 = Minuet.Session.attach db in
      Minuet.Session.put s1 "k" "v0";
      let obs = Minuet.Db.obs db in
      Obs.clear_spans obs;
      let first = ref true in
      Minuet.Session.with_txn s1 (fun tx ->
          let (_ : string option) = Minuet.Session.t_get tx "k" in
          if !first then begin
            first := false;
            (* Invalidate s1's read set before it commits. *)
            Minuet.Session.put s2 "k" "conflict"
          end;
          Minuet.Session.t_put tx "k" "mine");
      let spans = Obs.spans obs in
      let op_span =
        List.find
          (fun i -> i.Obs.Span.kind = Obs.Span.Op (Obs.Op.With_txn, Obs.Op.Up_to_date))
          spans
      in
      let txn_span =
        List.find
          (fun i -> i.Obs.Span.kind = Obs.Span.Txn && i.Obs.Span.parent = op_span.Obs.Span.id)
          spans
      in
      let attempts =
        List.filter
          (fun i ->
            i.Obs.Span.kind = Obs.Span.Attempt && i.Obs.Span.parent = txn_span.Obs.Span.id)
          spans
      in
      check Alcotest.bool "at least two attempts" true (List.length attempts >= 2);
      check Alcotest.bool "first attempt did not complete" true
        ((List.hd attempts).Obs.Span.outcome <> Obs.Span.Completed);
      let last = List.nth attempts (List.length attempts - 1) in
      check Alcotest.bool "last attempt completed" true
        (last.Obs.Span.outcome = Obs.Span.Completed);
      (* Every attempt lies inside its transaction's interval. *)
      List.iter
        (fun a ->
          check Alcotest.bool "attempt within txn" true
            (a.Obs.Span.start >= txn_span.Obs.Span.start
            && a.Obs.Span.stop <= txn_span.Obs.Span.stop))
        attempts)

(* ------------------------------------------------------------------ *)
(* Induced aborts                                                       *)
(* ------------------------------------------------------------------ *)

let test_lock_busy_under_conflict () =
  Minuet.Harness.run ~config:small_config (fun db ->
      let obs = Minuet.Db.obs db in
      let workers = 16 in
      let left = ref workers in
      for w = 1 to workers do
        let s = Minuet.Session.attach ~home:(w mod (Minuet.Db.config db).Minuet.Config.hosts) db in
        Sim.spawn (fun () ->
            for i = 0 to 24 do
              Minuet.Session.put s "hot" (string_of_int ((w * 100) + i))
            done;
            decr left)
      done;
      Sim.delay 120.0;
      check Alcotest.int "workers drained" 0 !left;
      check Alcotest.bool "mtx lock_busy observed" true
        (Obs.abort_count obs ~layer:Obs.Abort.Mtx Obs.Abort.Lock_busy > 0);
      check Alcotest.bool "validation failures observed" true
        (Obs.abort_count obs Obs.Abort.Validation_failed > 0))

let test_crashed_host_abort () =
  Sim.run ~seed:11 (fun () ->
      let config = { Sinfonia.Config.default with Sinfonia.Config.replication = false } in
      let cluster = Sinfonia.Cluster.create ~config ~n:2 () in
      let obs = Sinfonia.Cluster.obs cluster in
      Sinfonia.Cluster.crash cluster 1;
      let addr = Sinfonia.Address.make ~node:1 ~off:0 in
      let mtx = Sinfonia.Mtx.make ~writes:[ Sinfonia.Mtx.write_at addr "x" ] () in
      (match Sinfonia.Coordinator.exec cluster mtx with
      | Sinfonia.Mtx.Unavailable _ -> ()
      | _ -> Alcotest.fail "expected Unavailable against a crashed, unreplicated node");
      check Alcotest.int "crashed_host at mtx layer" 1
        (Obs.abort_count obs ~layer:Obs.Abort.Mtx Obs.Abort.Crashed_host);
      check Alcotest.int "legacy counter" 1
        (Sim.Metrics.counter_value (Obs.metrics obs) "mtx.unavailable"))

(* ------------------------------------------------------------------ *)
(* JSON report                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  Minuet.Harness.run ~config:small_config (fun db ->
      let s = Minuet.Session.attach db in
      for i = 0 to 49 do
        Minuet.Session.put s (Printf.sprintf "key%04d" i) "v"
      done;
      let (_ : string option) = Minuet.Session.get s "key0007" in
      let snap = Minuet.Session.snapshot s in
      let (_ : string option) = Minuet.Session.get_at s snap "key0007" in
      let obs = Minuet.Db.obs db in
      let json = Obs.Report.to_json ~name:"roundtrip" obs in
      let reparsed = Obs.Json.parse (Obs.Json.to_string json) in
      check Alcotest.bool "serialize/parse round-trip" true (Obs.Json.equal json reparsed);
      let member name =
        match Obs.Json.member name reparsed with
        | Some v -> v
        | None -> Alcotest.failf "missing %s" name
      in
      check Alcotest.bool "name" true (member "name" = Obs.Json.String "roundtrip");
      check Alcotest.bool "schema" true (member "schema_version" = Obs.Json.Int 1);
      (* Counters in the report agree with the registry. *)
      let commits =
        match Obs.Json.member "txn.commits" (member "counters") with
        | Some (Obs.Json.Int n) -> n
        | _ -> Alcotest.fail "counters.txn.commits missing"
      in
      check Alcotest.int "report counter = registry counter"
        (Sim.Metrics.counter_value (Obs.metrics obs) "txn.commits")
        commits;
      (* Both read paths produced latency summaries. *)
      let ops = member "ops" in
      List.iter
        (fun label ->
          match Obs.Json.member label ops with
          | Some cell -> (
              match Obs.Json.member "p99_ms" cell with
              | Some (Obs.Json.Float _ | Obs.Json.Int _) -> ()
              | _ -> Alcotest.failf "ops.%s.p99_ms missing" label)
          | None -> Alcotest.failf "ops.%s missing" label)
        [ "get"; "put"; "get@snapshot"; "snapshot" ])

let test_json_parser () =
  let t = Obs.Json.parse {| {"a": [1, 2.5, true, null, "s\n"], "b": {"c": -3}} |} in
  (match Obs.Json.member "a" t with
  | Some (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Bool true; Obs.Json.Null; Obs.Json.String "s\n" ]) -> ()
  | _ -> Alcotest.fail "array contents");
  (match Obs.Json.member "b" t with
  | Some b -> check Alcotest.bool "nested" true (Obs.Json.member "c" b = Some (Obs.Json.Int (-3)))
  | None -> Alcotest.fail "missing b");
  (match Obs.Json.parse "{broken" with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "parser accepted garbage")

let () =
  Alcotest.run "obs"
    [
      ( "handles",
        [
          Alcotest.test_case "typed counters back the registry" `Quick test_typed_counters;
          Alcotest.test_case "abort matrix" `Quick test_abort_matrix;
        ] );
      ( "spans",
        [ Alcotest.test_case "with_txn retry nesting" `Quick test_span_nesting_with_retry ] );
      ( "aborts",
        [
          Alcotest.test_case "lock busy under conflict" `Quick test_lock_busy_under_conflict;
          Alcotest.test_case "crashed host" `Quick test_crashed_host_abort;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
    ]
