(* Tests for the snapshot lifecycle: snapshot creation service with
   borrowing, garbage collection, and branching versions. *)

let check = Alcotest.check

open Btree
module Txn = Dyntxn.Txn
module Objcache = Dyntxn.Objcache
module Objref = Dyntxn.Objref
module Cluster = Sinfonia.Cluster
module Scs = Mvcc.Scs
module Gc = Mvcc.Gc
module Branching = Mvcc.Branching

let key i = Printf.sprintf "k%06d" i

let small_layout = Layout.make ~node_size:512 ~max_slots:4096 ~max_trees:4 ~max_snapshots:256 ()

type env = { cluster : Cluster.t; layout : Layout.t; shared : Node_alloc.Shared.t }

let make_env ?(n = 3) () =
  let layout = small_layout in
  let config =
    { Sinfonia.Config.default with heap_capacity = Layout.heap_capacity_needed layout }
  in
  let cluster = Cluster.create ~config ~n () in
  let shared = Node_alloc.Shared.create ~n_memnodes:n in
  { cluster; layout; shared }

let make_tree ?(max_keys = 4) ?(tree_id = 0) env =
  let alloc = Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared () in
  Ops.make_tree ~max_keys_leaf:max_keys ~max_keys_internal:max_keys ~cluster:env.cluster
    ~layout:env.layout ~tree_id ~alloc ~cache:(Objcache.create ()) ()

let with_linear_tree ?n f =
  Sim.run (fun () ->
      let env = make_env ?n () in
      let tree = make_tree env in
      Ops.Linear.init_tree tree;
      f env tree)

let tip tree txn = Ops.Linear.tip tree txn

let put tree k v = Ops.put tree ~vctx_of:(tip tree) k v

let _get tree k = Ops.get tree ~vctx_of:(tip tree) k

(* ------------------------------------------------------------------ *)
(* SCS                                                                  *)
(* ------------------------------------------------------------------ *)

let test_scs_sequential_creates () =
  with_linear_tree (fun _env tree ->
      let scs = Scs.create ~tree () in
      put tree (key 1) "v1";
      let s1, r1 = Scs.request scs in
      put tree (key 2) "v2";
      let s2, _ = Scs.request scs in
      check Alcotest.bool "ids increase" true (Int64.compare s1 s2 < 0);
      check Alcotest.int "two created" 2 (Scs.snapshots_created scs);
      check Alcotest.int "no borrows (sequential)" 0 (Scs.borrows scs);
      (* The first snapshot contains key1 but not key2. *)
      let entries = Ops.audit tree ~sid:s1 ~root:r1 in
      check
        (Alcotest.list Alcotest.string)
        "snapshot 1 contents" [ key 1 ] (List.map fst entries))

let test_scs_concurrent_borrowing () =
  with_linear_tree (fun _env tree ->
      put tree (key 1) "v";
      let scs = Scs.create ~tree () in
      let requesters = 8 in
      let results = ref [] in
      for _ = 1 to requesters do
        Sim.spawn (fun () ->
            let r = Scs.request scs in
            results := r :: !results)
      done;
      Sim.delay 60.0;
      check Alcotest.int "all served" requesters (List.length !results);
      check Alcotest.bool "some borrowed" true (Scs.borrows scs > 0);
      check Alcotest.int "accounting" requesters (Scs.snapshots_created scs + Scs.borrows scs);
      check Alcotest.bool "fewer creations than requests" true
        (Scs.snapshots_created scs < requesters);
      (* Every returned snapshot is readable and contains the key. *)
      List.iter
        (fun (sid, root) ->
          let entries = Ops.audit tree ~sid ~root in
          check Alcotest.int "readable snapshot" 1 (List.length entries))
        !results)

let test_scs_borrowing_strictly_serializable () =
  (* A write completed before a snapshot request must be visible in the
     returned (possibly borrowed) snapshot. *)
  with_linear_tree (fun env tree ->
      let scs = Scs.create ~tree () in
      let violations = ref 0 in
      let finished = ref 0 in
      for p = 1 to 6 do
        Sim.spawn (fun () ->
            let mine = make_tree env in
            Ops.put mine ~vctx_of:(tip mine) (key p) "present";
            let sid, root = Scs.request scs in
            let entries = Ops.audit mine ~sid ~root in
            if not (List.mem_assoc (key p) entries) then incr violations;
            incr finished)
      done;
      Sim.delay 120.0;
      check Alcotest.int "all finished" 6 !finished;
      check Alcotest.int "no staleness violations" 0 !violations)

let test_scs_no_borrowing_mode () =
  with_linear_tree (fun _env tree ->
      put tree (key 1) "v";
      let scs = Scs.create ~borrowing:false ~tree () in
      let served = ref 0 in
      for _ = 1 to 5 do
        Sim.spawn (fun () ->
            let (_ : int64 * Objref.t) = Scs.request scs in
            incr served)
      done;
      Sim.delay 60.0;
      check Alcotest.int "all served" 5 !served;
      check Alcotest.int "each created its own" 5 (Scs.snapshots_created scs);
      check Alcotest.int "no borrows" 0 (Scs.borrows scs))

let test_scs_staleness_bound () =
  with_linear_tree (fun _env tree ->
      put tree (key 1) "v";
      let scs = Scs.create ~min_interval:10.0 ~tree () in
      let s1, _ = Scs.request scs in
      (* Within k seconds: reuse, even though a write happened. *)
      put tree (key 2) "v";
      Sim.delay 1.0;
      let s2, _ = Scs.request scs in
      check Alcotest.int64 "stale reuse" s1 s2;
      check Alcotest.bool "reuse counted" true (Scs.stale_reuses scs > 0);
      (* After k seconds: a fresh snapshot. *)
      Sim.delay 11.0;
      let s3, _ = Scs.request scs in
      check Alcotest.bool "fresh after k" true (Int64.compare s3 s1 > 0);
      check Alcotest.int "two creations total" 2 (Scs.snapshots_created scs))

(* ------------------------------------------------------------------ *)
(* Garbage collection                                                   *)
(* ------------------------------------------------------------------ *)

let create_snapshot tree =
  let txn = Txn.begin_ (Ops.cluster tree) in
  let sid, root = Ops.Linear.create_snapshot tree txn in
  match Txn.commit ~blocking:true txn with
  | Txn.Committed -> (sid, root)
  | _ -> Alcotest.fail "snapshot creation failed"

let test_gc_watermark () =
  with_linear_tree (fun _env tree ->
      check Alcotest.int64 "initial" 0L (Gc.get_lowest tree);
      Gc.set_lowest tree 5L;
      check Alcotest.int64 "set" 5L (Gc.get_lowest tree))

let test_gc_reclaims_superseded_nodes () =
  Sim.run (fun () ->
      let env = make_env () in
      let alloc =
        Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared ()
      in
      let tree =
        Ops.make_tree ~max_keys_leaf:4 ~max_keys_internal:4 ~cluster:env.cluster
          ~layout:env.layout ~tree_id:0 ~alloc ~cache:(Objcache.create ()) ()
      in
      Ops.Linear.init_tree tree;
      for i = 0 to 49 do
        put tree (key i) "v0"
      done;
      let _sid, _root = create_snapshot tree in
      (* Updates copy every touched path; the superseded copies become
         garbage once the watermark passes the snapshot. *)
      for i = 0 to 49 do
        put tree (key i) "v1"
      done;
      check Alcotest.int "nothing collectable yet" 0 (Gc.sweep tree ~alloc);
      Gc.keep_recent tree ~n:0;
      let freed = Gc.sweep tree ~alloc in
      check Alcotest.bool "reclaimed" true (freed > 0);
      (* The tip is untouched. *)
      let sid, root =
        let txn = Txn.begin_ (Ops.cluster tree) in
        let r = Ops.Linear.read_tip tree txn in
        (match Txn.commit txn with _ -> ());
        r
      in
      let entries = Ops.audit tree ~sid ~root in
      check Alcotest.int "tip intact" 50 (List.length entries);
      List.iter (fun (_, v) -> check Alcotest.string "tip values" "v1" v) entries;
      (* Freed slots land on the shared free list and get reused. *)
      let free_total =
        List.init (Cluster.n_memnodes env.cluster) (fun node ->
            Node_alloc.Shared.free_count env.shared ~node)
        |> List.fold_left ( + ) 0
      in
      check Alcotest.bool "free list populated" true (free_total > 0);
      check Alcotest.int "sweep idempotent" 0 (Gc.sweep tree ~alloc))

let test_gc_background_process () =
  Sim.run ~until:100.0 (fun () ->
      let env = make_env () in
      let alloc =
        Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared ()
      in
      let tree =
        Ops.make_tree ~max_keys_leaf:4 ~max_keys_internal:4 ~cluster:env.cluster
          ~layout:env.layout ~tree_id:0 ~alloc ~cache:(Objcache.create ()) ()
      in
      Ops.Linear.init_tree tree;
      Gc.run_background tree ~alloc ~interval:5.0;
      for i = 0 to 29 do
        put tree (key i) "v0"
      done;
      let (_ : int64 * Objref.t) = create_snapshot tree in
      for i = 0 to 29 do
        put tree (key i) "v1"
      done;
      Gc.keep_recent tree ~n:0;
      Sim.spawn (fun () ->
          Sim.delay 20.0;
          check Alcotest.bool "background reclaimed" true
            (Sim.Metrics.counter_value (Cluster.metrics env.cluster) "gc.slots_reclaimed" > 0);
          Sim.stop ()))

(* ------------------------------------------------------------------ *)
(* Branching versions                                                   *)
(* ------------------------------------------------------------------ *)

let with_branching ?n ?(beta = 2) f =
  Sim.run (fun () ->
      let env = make_env ?n () in
      let tree = make_tree env in
      let br = Branching.attach ~tree ~beta () in
      Branching.init_tree br;
      f env br)

let audit_version br sid =
  Ops.audit (Branching.tree br) ~sid ~root:(Branching.root_of br ~sid)

let test_branch_basic_snapshot () =
  with_branching (fun _env br ->
      Branching.put br (key 1) "v0";
      check (Alcotest.option Alcotest.string) "tip read" (Some "v0") (Branching.get br (key 1));
      (* Creating the first branch freezes snapshot 0. *)
      let b1 = Branching.create_branch br ~from:0L in
      check Alcotest.int64 "first branch id" 1L b1;
      check Alcotest.bool "0 now read-only" false (Branching.writable br ~sid:0L);
      check Alcotest.bool "1 writable" true (Branching.writable br ~sid:1L);
      (* Mainline writes land in 1. *)
      Branching.put br (key 1) "v1";
      check (Alcotest.option Alcotest.string) "frozen version" (Some "v0")
        (Branching.get br ~at:0L (key 1));
      check (Alcotest.option Alcotest.string) "mainline" (Some "v1") (Branching.get br (key 1)))

let test_branch_parallel_clones_isolated () =
  with_branching (fun _env br ->
      for i = 0 to 19 do
        Branching.put br (key i) "base"
      done;
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:0L in
      check Alcotest.bool "distinct" true (not (Int64.equal b1 b2));
      (* Divergent writes. *)
      Branching.put br ~at:b1 (key 0) "one";
      Branching.put br ~at:b2 (key 0) "two";
      Branching.put br ~at:b2 (key 100) "only-two";
      check (Alcotest.option Alcotest.string) "b1 sees its write" (Some "one")
        (Branching.get br ~at:b1 (key 0));
      check (Alcotest.option Alcotest.string) "b2 sees its write" (Some "two")
        (Branching.get br ~at:b2 (key 0));
      check (Alcotest.option Alcotest.string) "b1 unaffected by b2 insert" None
        (Branching.get br ~at:b1 (key 100));
      check (Alcotest.option Alcotest.string) "origin frozen" (Some "base")
        (Branching.get br ~at:0L (key 0));
      (* Full audits agree. *)
      check Alcotest.int "b2 has extra key" 21 (List.length (audit_version br b2));
      check Alcotest.int "b1 size" 20 (List.length (audit_version br b1));
      check Alcotest.int "0 size" 20 (List.length (audit_version br 0L)))

let test_branch_ancestry () =
  with_branching ~beta:3 (fun _env br ->
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:b1 in
      let b3 = Branching.create_branch br ~from:0L in
      check (Alcotest.option Alcotest.int64) "parent of b2" (Some b1)
        (Branching.parent br ~sid:b2);
      check (Alcotest.option Alcotest.int64) "parent of b3" (Some 0L)
        (Branching.parent br ~sid:b3);
      check (Alcotest.option Alcotest.int64) "root has no parent" None
        (Branching.parent br ~sid:0L);
      let txn = Txn.begin_ (Ops.cluster (Branching.tree br)) in
      check Alcotest.bool "0 anc b2" true (Branching.is_ancestor br txn 0L b2);
      check Alcotest.bool "b1 anc b2" true (Branching.is_ancestor br txn b1 b2);
      check Alcotest.bool "b3 not anc b2" false (Branching.is_ancestor br txn b3 b2);
      check Alcotest.bool "b2 not anc b1" false (Branching.is_ancestor br txn b2 b1);
      check Alcotest.bool "reflexive" true (Branching.is_ancestor br txn b2 b2);
      match Txn.commit txn with _ -> ())

let test_branch_mainline_resolution () =
  with_branching (fun _env br ->
      Branching.put br (key 1) "r0";
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:b1 in
      ignore b2;
      (* put on the default mainline follows first-branch pointers to
         the current tip. *)
      Branching.put br (key 1) "tip";
      let txn = Txn.begin_ (Ops.cluster (Branching.tree br)) in
      let tip = Branching.mainline_tip br txn ~from:0L in
      (match Txn.commit txn with _ -> ());
      check Alcotest.int64 "mainline is b2" b2 tip;
      check (Alcotest.option Alcotest.string) "write went to tip" (Some "tip")
        (Branching.get br ~at:tip (key 1));
      check (Alcotest.option Alcotest.string) "b1 frozen" (Some "r0")
        (Branching.get br ~at:b1 (key 1)))

let test_branch_limit () =
  with_branching ~beta:2 (fun _env br ->
      let (_ : int64) = Branching.create_branch br ~from:0L in
      let (_ : int64) = Branching.create_branch br ~from:0L in
      match Branching.create_branch br ~from:0L with
      | (_ : int64) -> Alcotest.fail "third branch should exceed beta=2"
      | exception Branching.Too_many_branches 0L -> ())

let test_branch_descendant_sets_bounded () =
  (* Force a node to be copied in more than β branches so a
     discretionary copy-on-write must fire, then verify every version
     still reads correctly and stored descendant sets are within β. *)
  with_branching ~beta:2 (fun env br ->
      for i = 0 to 9 do
        Branching.put br (key i) "base"
      done;
      (* Version tree: 0 -> b1 (mainline), b1 -> {b2 (mainline), b3},
         0 -> b4. Writing the same leaf in b2, b3 and b4 gives three
         copies of nodes created at snapshot 0. *)
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:b1 in
      let b3 = Branching.create_branch br ~from:b1 in
      let b4 = Branching.create_branch br ~from:0L in
      Branching.put br ~at:b2 (key 0) "in-b2";
      Branching.put br ~at:b3 (key 0) "in-b3";
      Branching.put br ~at:b4 (key 0) "in-b4";
      (* All versions read correctly. *)
      check (Alcotest.option Alcotest.string) "b2" (Some "in-b2")
        (Branching.get br ~at:b2 (key 0));
      check (Alcotest.option Alcotest.string) "b3" (Some "in-b3")
        (Branching.get br ~at:b3 (key 0));
      check (Alcotest.option Alcotest.string) "b4" (Some "in-b4")
        (Branching.get br ~at:b4 (key 0));
      check (Alcotest.option Alcotest.string) "0 frozen" (Some "base")
        (Branching.get br ~at:0L (key 0));
      check (Alcotest.option Alcotest.string) "b1 frozen" (Some "base")
        (Branching.get br ~at:b1 (key 0));
      (* A discretionary copy fired and no stored node exceeds β. *)
      check Alcotest.bool "discretionary cow fired" true
        (Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.discretionary_cow" > 0);
      let layout = env.layout in
      for node = 0 to Cluster.n_memnodes env.cluster - 1 do
        let _, store = Cluster.route env.cluster node in
        for index = 0 to layout.Layout.max_slots - 1 do
          let off = Layout.slot_off layout ~index in
          let slot =
            Sinfonia.Heap.read
              (Sinfonia.Memnode.store_heap store)
              ~off ~len:layout.Layout.node_size
          in
          if Int64.compare (Objref.seq_of_slot slot) 0L <> 0 then
            (* Raw heap sweep: slots that are not B-tree nodes (free
               space, allocator metadata) legitimately fail to decode
               and are skipped — but only for that reason. *)
            match Bnode.decode (Objref.payload_of_slot slot) with
            | exception Codec.Decode_error _ -> ()
            | n ->
                check Alcotest.bool "descendant set within beta" true
                  (Array.length n.Bnode.descendants <= 2)
        done
      done)

let test_branch_randomized_model () =
  (* Random interleaving of branch creations and writes, checked against
     a per-version Map model. *)
  with_branching ~beta:3 (fun _env br ->
      let module M = Map.Make (String) in
      let rng = Sim.Rng.create 2024 in
      let models = Hashtbl.create 16 in
      Hashtbl.replace models 0L M.empty;
      let tips = ref [ 0L ] in
      let frozen = ref [] in
      let random_of lst = List.nth lst (Sim.Rng.int rng (List.length lst)) in
      for _step = 1 to 250 do
        let c = Sim.Rng.int rng 10 in
        if c = 0 && List.length !tips + List.length !frozen < 30 then begin
          (* Branch from any existing version (tip or frozen). *)
          let from = random_of (!tips @ !frozen) in
          match Branching.create_branch br ~from with
          | sid ->
              Hashtbl.replace models sid (Hashtbl.find models from);
              tips := sid :: !tips;
              if List.mem from !tips then begin
                (* First branch freezes a tip. *)
                tips := List.filter (fun s -> not (Int64.equal s from)) !tips;
                frozen := from :: !frozen
              end
          | exception Branching.Too_many_branches _ -> ()
        end
        else begin
          let at = random_of !tips in
          let k = key (Sim.Rng.int rng 30) in
          if c < 8 then begin
            let v = Printf.sprintf "%Ld-%d" at _step in
            Branching.put br ~at k v;
            Hashtbl.replace models at (M.add k v (Hashtbl.find models at))
          end
          else begin
            let removed = Branching.remove br ~at k in
            let m = Hashtbl.find models at in
            check Alcotest.bool "remove agrees" (M.mem k m) removed;
            Hashtbl.replace models at (M.remove k m)
          end
        end
      done;
      (* Every version (frozen and tip) matches its model exactly. *)
      Hashtbl.iter
        (fun sid model ->
          let entries = audit_version br sid in
          if M.bindings model <> entries then
            Alcotest.failf "version %Ld diverged from model (%d vs %d entries)" sid
              (List.length (M.bindings model))
              (List.length entries))
        models)

let test_branch_scan () =
  with_branching (fun _env br ->
      for i = 0 to 29 do
        Branching.put br (key i) "base"
      done;
      let b1 = Branching.create_branch br ~from:0L in
      for i = 0 to 29 do
        if i mod 2 = 0 then Branching.put br ~at:b1 (key i) "updated"
      done;
      let frozen_scan = Branching.scan ~at:0L br ~from:"" ~count:100 in
      check Alcotest.int "frozen count" 30 (List.length frozen_scan);
      List.iter (fun (_, v) -> check Alcotest.string "frozen vals" "base" v) frozen_scan;
      let tip_scan = Branching.scan ~at:b1 br ~from:(key 10) ~count:5 in
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "tip scan"
        [
          (key 10, "updated");
          (key 11, "base");
          (key 12, "updated");
          (key 13, "base");
          (key 14, "updated");
        ]
        tip_scan)

let test_branch_multi_version_queries () =
  with_branching ~beta:3 (fun _env br ->
      Branching.put br (key 1) "v0";
      Branching.put br (key 2) "only-in-0";
      let b1 = Branching.create_branch br ~from:0L in
      Branching.put br ~at:b1 (key 1) "v1";
      let b2 = Branching.create_branch br ~from:b1 in
      Branching.put br ~at:b2 (key 1) "v2";
      Branching.put br ~at:b2 (key 3) "new-in-2";
      check Alcotest.bool "removed in b2" true (Branching.remove br ~at:b2 (key 2));
      (* Horizontal: same key across versions, atomically. *)
      (match Branching.get_many br ~at:[ 0L; b1; b2 ] (key 1) with
      | [ (_, Some "v0"); (_, Some "v1"); (_, Some "v2") ] -> ()
      | _ -> Alcotest.fail "get_many mismatch");
      (* Vertical: the key's history along the ancestry of b2. *)
      (match Branching.history br ~from:b2 (key 1) with
      | [ (s0, Some "v0"); (s1, Some "v1"); (s2, Some "v2") ] ->
          check Alcotest.bool "root-first order" true
            (Int64.equal s0 0L && Int64.equal s1 b1 && Int64.equal s2 b2)
      | _ -> Alcotest.fail "history mismatch");
      (* Diff between versions 0 and b2. *)
      let changes = Branching.diff br ~base:0L ~other:b2 in
      check Alcotest.int "three changes" 3 (List.length changes);
      List.iter
        (fun (k, change) ->
          match change with
          | Branching.Changed ("v0", "v2") -> check Alcotest.string "changed key" (key 1) k
          | Branching.Removed "only-in-0" -> check Alcotest.string "removed key" (key 2) k
          | Branching.Added "new-in-2" -> check Alcotest.string "added key" (key 3) k
          | _ -> Alcotest.fail "unexpected change")
        changes;
      check Alcotest.int "self diff empty" 0 (List.length (Branching.diff br ~base:b2 ~other:b2)))

let test_branch_delete_semantics () =
  with_branching ~beta:2 (fun _env br ->
      Branching.put br (key 1) "base";
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:0L in
      (* 0 is read-only with two branches; cannot delete 0 or it. *)
      (match Branching.delete_branch br 0L with
      | () -> Alcotest.fail "deleted version 0"
      | exception Branching.Not_deletable _ -> ());
      (* Delete the side branch b2: its parent keeps b1 as mainline. *)
      Branching.delete_branch br b2;
      check Alcotest.bool "b2 deleted" true (Branching.is_deleted br ~sid:b2);
      check Alcotest.bool "b1 alive" false (Branching.is_deleted br ~sid:b1);
      (match Branching.get br ~at:b2 (key 1) with
      | (_ : string option) -> Alcotest.fail "read of deleted branch allowed"
      | exception Invalid_argument _ -> ());
      (* Mainline still resolves through b1. *)
      Branching.put br (key 1) "on-b1";
      check (Alcotest.option Alcotest.string) "mainline write" (Some "on-b1")
        (Branching.get br ~at:b1 (key 1));
      (* Deleting b1 too frees version 0: it becomes writable again. *)
      Branching.delete_branch br b1;
      check Alcotest.bool "0 writable again" true (Branching.writable br ~sid:0L);
      Branching.put br (key 9) "direct";
      check (Alcotest.option Alcotest.string) "write to reopened 0" (Some "direct")
        (Branching.get br ~at:0L (key 9));
      (* With a branch slot freed, a new branch may be created. *)
      let b3 = Branching.create_branch br ~from:0L in
      check Alcotest.bool "new branch" true (Int64.compare b3 b2 > 0))

let test_branch_delete_first_of_two () =
  with_branching ~beta:2 (fun _env br ->
      Branching.put br (key 1) "base";
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:0L in
      Branching.delete_branch br b1;
      (* The parent still has b2: it must NOT become writable, and the
         default mainline is gone. *)
      check Alcotest.bool "parent not writable" false (Branching.writable br ~sid:0L);
      (match Branching.put br (key 2) "via-mainline" with
      | () -> Alcotest.fail "mainline should be broken"
      | exception Branching.No_mainline _ -> ());
      (* Explicit checkout of the surviving branch works. *)
      Branching.put br ~at:b2 (key 2) "explicit";
      check (Alcotest.option Alcotest.string) "b2 write" (Some "explicit")
        (Branching.get br ~at:b2 (key 2));
      (* Deleting b2 too reopens the parent. *)
      Branching.delete_branch br b2;
      check Alcotest.bool "parent writable again" true (Branching.writable br ~sid:0L);
      Branching.put br (key 3) "direct";
      check (Alcotest.option Alcotest.string) "direct" (Some "direct")
        (Branching.get br ~at:0L (key 3)))

let test_branch_gc_reclaims_deleted () =
  with_branching ~beta:2 (fun env br ->
      for i = 0 to 29 do
        Branching.put br (key i) "base"
      done;
      let b1 = Branching.create_branch br ~from:0L in
      let scratch = Branching.create_branch br ~from:0L in
      (* Heavy rewriting on the scratch branch creates many private
         copies. *)
      for round = 1 to 3 do
        for i = 0 to 29 do
          Branching.put br ~at:scratch (key i) (Printf.sprintf "scratch%d" round)
        done
      done;
      Branching.put br ~at:b1 (key 0) "keep";
      Branching.delete_branch br scratch;
      let alloc =
        Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared ()
      in
      let freed =
        Gc.sweep_branching [ Branching.tree br ] ~alloc ~roots:(Branching.live_roots br)
      in
      check Alcotest.bool "reclaimed scratch nodes" true (freed > 0);
      (* Live versions are untouched and fully intact. *)
      check Alcotest.int "v0 intact" 30 (List.length (audit_version br 0L));
      check Alcotest.int "b1 intact" 30 (List.length (audit_version br b1));
      check (Alcotest.option Alcotest.string) "b1 value" (Some "keep")
        (Branching.get br ~at:b1 (key 0));
      (* A second sweep finds nothing more. *)
      check Alcotest.int "idempotent" 0
        (Gc.sweep_branching [ Branching.tree br ] ~alloc ~roots:(Branching.live_roots br)))

let test_branch_gc_concurrent_updates_safe () =
  with_branching ~beta:2 (fun env br ->
      for i = 0 to 19 do
        Branching.put br (key i) "base"
      done;
      let b1 = Branching.create_branch br ~from:0L in
      let scratch = Branching.create_branch br ~from:0L in
      Branching.put br ~at:scratch (key 0) "scratch";
      Branching.delete_branch br scratch;
      let alloc =
        Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared ()
      in
      (* Writer keeps mutating b1 while the sweep runs. *)
      let writer_done = ref false in
      Sim.spawn (fun () ->
          for i = 0 to 19 do
            Branching.put br ~at:b1 (key i) "during-gc"
          done;
          writer_done := true);
      let (_ : int) =
        Gc.sweep_branching [ Branching.tree br ] ~alloc ~roots:(Branching.live_roots br)
      in
      Sim.delay 600.0;
      check Alcotest.bool "writer finished" true !writer_done;
      let entries = audit_version br b1 in
      check Alcotest.int "b1 intact" 20 (List.length entries);
      List.iter
        (fun (_, v) -> check Alcotest.bool "no lost data" true (v = "during-gc" || v = "base"))
        entries)

let test_branch_concurrent_writers_on_clones () =
  with_branching ~n:3 ~beta:3 (fun env br ->
      for i = 0 to 19 do
        Branching.put br (key i) "base"
      done;
      let b1 = Branching.create_branch br ~from:0L in
      let b2 = Branching.create_branch br ~from:0L in
      (* Two proxies write to the two clones concurrently. *)
      let mk () =
        Branching.attach ~tree:(make_tree env) ~beta:3 ()
      in
      let done_count = ref 0 in
      let w1 = mk () and w2 = mk () in
      Sim.spawn (fun () ->
          for i = 0 to 19 do
            Branching.put w1 ~at:b1 (key i) "clone1"
          done;
          incr done_count);
      Sim.spawn (fun () ->
          for i = 0 to 19 do
            Branching.put w2 ~at:b2 (key i) "clone2"
          done;
          incr done_count);
      Sim.delay 3600.0;
      check Alcotest.int "both writers done" 2 !done_count;
      List.iter (fun (_, v) -> check Alcotest.string "b1" "clone1" v) (audit_version br b1);
      List.iter (fun (_, v) -> check Alcotest.string "b2" "clone2" v) (audit_version br b2);
      List.iter (fun (_, v) -> check Alcotest.string "origin" "base" v) (audit_version br 0L))

let () =
  Alcotest.run "mvcc"
    [
      ( "scs",
        [
          Alcotest.test_case "sequential creates" `Quick test_scs_sequential_creates;
          Alcotest.test_case "concurrent borrowing" `Quick test_scs_concurrent_borrowing;
          Alcotest.test_case "borrowing strictly serializable" `Quick
            test_scs_borrowing_strictly_serializable;
          Alcotest.test_case "no-borrowing mode" `Quick test_scs_no_borrowing_mode;
          Alcotest.test_case "staleness bound" `Quick test_scs_staleness_bound;
        ] );
      ( "gc",
        [
          Alcotest.test_case "watermark" `Quick test_gc_watermark;
          Alcotest.test_case "reclaims superseded nodes" `Quick test_gc_reclaims_superseded_nodes;
          Alcotest.test_case "background process" `Quick test_gc_background_process;
        ] );
      ( "branching",
        [
          Alcotest.test_case "basic snapshot" `Quick test_branch_basic_snapshot;
          Alcotest.test_case "parallel clones isolated" `Quick
            test_branch_parallel_clones_isolated;
          Alcotest.test_case "ancestry" `Quick test_branch_ancestry;
          Alcotest.test_case "mainline resolution" `Quick test_branch_mainline_resolution;
          Alcotest.test_case "branch limit" `Quick test_branch_limit;
          Alcotest.test_case "descendant sets bounded" `Quick
            test_branch_descendant_sets_bounded;
          Alcotest.test_case "randomized model" `Slow test_branch_randomized_model;
          Alcotest.test_case "scan" `Quick test_branch_scan;
          Alcotest.test_case "concurrent clone writers" `Quick
            test_branch_concurrent_writers_on_clones;
          Alcotest.test_case "multi-version queries" `Quick test_branch_multi_version_queries;
          Alcotest.test_case "delete semantics" `Quick test_branch_delete_semantics;
          Alcotest.test_case "delete first of two" `Quick test_branch_delete_first_of_two;
          Alcotest.test_case "gc reclaims deleted" `Quick test_branch_gc_reclaims_deleted;
          Alcotest.test_case "gc concurrent safe" `Quick test_branch_gc_concurrent_updates_safe;
        ] );
    ]
