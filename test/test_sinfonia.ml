(* Tests for the Sinfonia substrate: heaps, range locks,
   minitransactions, the commit protocol, and replication. *)

let check = Alcotest.check

open Sinfonia

let addr node off = Address.make ~node ~off

(* ------------------------------------------------------------------ *)
(* Address                                                              *)
(* ------------------------------------------------------------------ *)

let test_address_basics () =
  let a = addr 2 100 and b = addr 2 200 and c = addr 3 0 in
  check Alcotest.bool "order within node" true (Address.compare a b < 0);
  check Alcotest.bool "order across nodes" true (Address.compare b c < 0);
  check Alcotest.bool "equal" true (Address.equal a (addr 2 100));
  check Alcotest.bool "null" true (Address.is_null Address.null);
  check Alcotest.bool "not null" false (Address.is_null a);
  match Address.make ~node:(-1) ~off:0 with
  | (_ : Address.t) -> Alcotest.fail "negative node accepted"
  | exception Invalid_argument _ -> ()

let test_address_codec () =
  let roundtrip a =
    let e = Codec.Enc.create () in
    Address.encode e a;
    check Alcotest.int "fixed size" Address.encoded_size (Codec.Enc.length e);
    Address.decode (Codec.Dec.of_string (Codec.Enc.to_string e))
  in
  let a = addr 5 123456 in
  check Alcotest.bool "roundtrip" true (Address.equal a (roundtrip a));
  check Alcotest.bool "null roundtrip" true (Address.is_null (roundtrip Address.null))

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)
(* ------------------------------------------------------------------ *)

let test_heap_read_write () =
  let h = Heap.create ~capacity:1024 () in
  Heap.write h ~off:10 "hello";
  check Alcotest.string "read back" "hello" (Heap.read h ~off:10 ~len:5);
  check Alcotest.string "unwritten is zero" "\000\000" (Heap.read h ~off:100 ~len:2);
  check Alcotest.int "high water" 15 (Heap.high_water h)

let test_heap_overwrite () =
  let h = Heap.create ~capacity:1024 () in
  Heap.write h ~off:0 "aaaa";
  Heap.write h ~off:2 "bb";
  check Alcotest.string "partial overwrite" "aabb" (Heap.read h ~off:0 ~len:4)

let test_heap_capacity () =
  let h = Heap.create ~capacity:16 () in
  Heap.write h ~off:0 (String.make 16 'x');
  (match Heap.write h ~off:8 (String.make 16 'y') with
  | () -> Alcotest.fail "overflow accepted"
  | exception Heap.Out_of_space -> ());
  match Heap.read h ~off:8 ~len:16 with
  | (_ : string) -> Alcotest.fail "read past capacity accepted"
  | exception Invalid_argument _ -> ()

let test_heap_equal_at () =
  let h = Heap.create ~capacity:1024 () in
  Heap.write h ~off:4 "data";
  check Alcotest.bool "match" true (Heap.equal_at h ~off:4 "data");
  check Alcotest.bool "mismatch" false (Heap.equal_at h ~off:4 "datX");
  check Alcotest.bool "zeros match" true (Heap.equal_at h ~off:500 "\000\000\000");
  check Alcotest.bool "straddling boundary" true (Heap.equal_at h ~off:6 "ta\000")

let test_heap_snapshot_restore () =
  let h = Heap.create ~capacity:1024 () in
  Heap.write h ~off:0 "state one";
  let image = Heap.snapshot h in
  Heap.write h ~off:0 "state two";
  Heap.restore h image;
  check Alcotest.string "restored" "state one" (Heap.read h ~off:0 ~len:9)

let test_heap_page_boundaries () =
  (* Writes and reads straddling the 64 KiB page boundary. *)
  let h = Heap.create ~capacity:(1 lsl 20) () in
  let off = 65536 - 3 in
  Heap.write h ~off "abcdefgh";
  check Alcotest.string "straddling read" "abcdefgh" (Heap.read h ~off ~len:8);
  check Alcotest.bool "straddling equal_at" true (Heap.equal_at h ~off "abcdefgh");
  check Alcotest.string "partial" "cdefgh\000\000" (Heap.read h ~off:(off + 2) ~len:8)

let test_heap_sparse_high_offset () =
  (* A write far into the address space must not materialize the
     prefix. *)
  let h = Heap.create ~capacity:(1 lsl 29) () in
  Heap.write h ~off:((1 lsl 28) + 5) "sparse";
  check Alcotest.string "read back" "sparse" (Heap.read h ~off:((1 lsl 28) + 5) ~len:6);
  check Alcotest.string "prefix zero" "\000" (Heap.read h ~off:1234 ~len:1);
  check Alcotest.bool "resident is one page despite high water" true
    (Heap.resident h <= 65536 && Heap.high_water h > 1 lsl 28)

let prop_heap_matches_reference =
  (* Random writes against a reference Bytes model. *)
  let gen =
    QCheck.(small_list (pair (int_bound 4000) (string_of_size (Gen.int_range 1 200))))
  in
  QCheck.Test.make ~name:"heap matches byte-array model" ~count:200 gen (fun writes ->
      let h = Heap.create ~capacity:8192 () in
      let model = Bytes.make 8192 '\000' in
      List.iter
        (fun (off, data) ->
          if String.length data > 0 && off + String.length data <= 8192 then begin
            Heap.write h ~off data;
            Bytes.blit_string data 0 model off (String.length data)
          end)
        writes;
      Heap.read h ~off:0 ~len:8192 = Bytes.to_string model)

(* ------------------------------------------------------------------ *)
(* Lock table                                                           *)
(* ------------------------------------------------------------------ *)

let range ?(mode = Lock_table.Exclusive) start len = { Lock_table.start; len; mode }

let test_locks_basic () =
  let t = Lock_table.create () in
  check Alcotest.bool "acquire" true (Lock_table.try_acquire t ~owner:1L [ range 0 10 ]);
  check Alcotest.bool "conflict" false (Lock_table.try_acquire t ~owner:2L [ range 5 10 ]);
  check Alcotest.bool "disjoint ok" true (Lock_table.try_acquire t ~owner:2L [ range 10 10 ]);
  Lock_table.release t ~owner:1L;
  check Alcotest.bool "after release" true (Lock_table.try_acquire t ~owner:3L [ range 0 10 ])

let test_locks_all_or_nothing () =
  let t = Lock_table.create () in
  check Alcotest.bool "setup" true (Lock_table.try_acquire t ~owner:1L [ range 100 10 ]);
  (* Owner 2 wants two ranges; the second conflicts, so neither is taken. *)
  check Alcotest.bool "rejected" false
    (Lock_table.try_acquire t ~owner:2L [ range 0 10; range 105 10 ]);
  check Alcotest.bool "first range untouched" true
    (Lock_table.try_acquire t ~owner:3L [ range 0 10 ])

let test_locks_same_owner_overlap () =
  let t = Lock_table.create () in
  check Alcotest.bool "first" true (Lock_table.try_acquire t ~owner:1L [ range 0 10 ]);
  check Alcotest.bool "same owner overlap ok" true
    (Lock_table.try_acquire t ~owner:1L [ range 5 10 ]);
  check Alcotest.bool "holds" true (Lock_table.holds t ~owner:1L);
  Lock_table.release t ~owner:1L;
  check Alcotest.bool "released" false (Lock_table.holds t ~owner:1L);
  check Alcotest.int "empty" 0 (Lock_table.held_ranges t)

let test_locks_adjacent_no_conflict () =
  let t = Lock_table.create () in
  check Alcotest.bool "a" true (Lock_table.try_acquire t ~owner:1L [ range 0 10 ]);
  check Alcotest.bool "adjacent" true (Lock_table.try_acquire t ~owner:2L [ range 10 10 ])

let test_locks_shared_modes () =
  let t = Lock_table.create () in
  let shared = Lock_table.Shared in
  check Alcotest.bool "s1" true (Lock_table.try_acquire t ~owner:1L [ range ~mode:shared 0 10 ]);
  check Alcotest.bool "s2 shared ok" true
    (Lock_table.try_acquire t ~owner:2L [ range ~mode:shared 5 10 ]);
  check Alcotest.bool "writer blocked by readers" false
    (Lock_table.try_acquire t ~owner:3L [ range 5 2 ]);
  Lock_table.release t ~owner:1L;
  check Alcotest.bool "still blocked by reader 2" false
    (Lock_table.try_acquire t ~owner:3L [ range 5 2 ]);
  Lock_table.release t ~owner:2L;
  check Alcotest.bool "writer proceeds" true (Lock_table.try_acquire t ~owner:3L [ range 5 2 ]);
  check Alcotest.bool "reader blocked by writer" false
    (Lock_table.try_acquire t ~owner:4L [ range ~mode:shared 5 2 ])

let test_locks_invalid_range () =
  let t = Lock_table.create () in
  match Lock_table.try_acquire t ~owner:1L [ range 0 0 ] with
  | (_ : bool) -> Alcotest.fail "zero-length range accepted"
  | exception Invalid_argument _ -> ()

let test_locks_blocking_success () =
  Sim.run (fun () ->
      let t = Lock_table.create () in
      assert (Lock_table.try_acquire t ~owner:1L [ range 0 10 ]);
      let acquired_at = ref (-1.0) in
      Sim.spawn (fun () ->
          let ok = Lock_table.acquire_blocking t ~owner:2L [ range 0 10 ] ~timeout:10.0 in
          check Alcotest.bool "eventually acquired" true ok;
          acquired_at := Sim.now ());
      Sim.delay 2.0;
      Lock_table.release t ~owner:1L;
      Sim.delay 0.1;
      check (Alcotest.float 1e-9) "acquired at release time" 2.0 !acquired_at)

let test_locks_blocking_timeout () =
  Sim.run (fun () ->
      let t = Lock_table.create () in
      assert (Lock_table.try_acquire t ~owner:1L [ range 0 10 ]);
      let start = Sim.now () in
      let ok = Lock_table.acquire_blocking t ~owner:2L [ range 0 10 ] ~timeout:1.5 in
      check Alcotest.bool "timed out" false ok;
      check (Alcotest.float 1e-6) "waited full timeout" 1.5 (Sim.now () -. start);
      check Alcotest.bool "holds nothing" false (Lock_table.holds t ~owner:2L))

let test_locks_blocking_queue () =
  (* Two blocked acquirers; both eventually succeed one after another. *)
  Sim.run (fun () ->
      let t = Lock_table.create () in
      assert (Lock_table.try_acquire t ~owner:1L [ range 0 10 ]);
      let acquired = ref [] in
      for i = 2 to 3 do
        let owner = Int64.of_int i in
        Sim.spawn (fun () ->
            if Lock_table.acquire_blocking t ~owner [ range 0 10 ] ~timeout:60.0 then begin
              acquired := i :: !acquired;
              Sim.delay 1.0;
              Lock_table.release t ~owner
            end)
      done;
      Sim.delay 5.0;
      Lock_table.release t ~owner:1L;
      Sim.delay 10.0;
      check Alcotest.int "both acquired" 2 (List.length !acquired))

(* ------------------------------------------------------------------ *)
(* Minitransactions                                                     *)
(* ------------------------------------------------------------------ *)

let test_mtx_memnodes () =
  let mtx =
    Mtx.make
      ~compares:[ Mtx.compare_at (addr 1 0) "x" ]
      ~reads:[ Mtx.read_at (addr 0 0) 4 ]
      ~writes:[ Mtx.write_at (addr 1 8) "y"; Mtx.write_at (addr 2 0) "z" ]
      ()
  in
  check (Alcotest.list Alcotest.int) "memnodes" [ 0; 1; 2 ] (Mtx.memnodes mtx);
  check Alcotest.int "items" 4 (Mtx.item_count mtx);
  check Alcotest.bool "not read only" false (Mtx.is_read_only mtx);
  check Alcotest.bool "not empty" false (Mtx.is_empty mtx);
  check Alcotest.bool "empty" true (Mtx.is_empty Mtx.empty)

let with_cluster ?(n = 3) ?config f =
  Sim.run (fun () ->
      let cluster = Cluster.create ?config ~n () in
      f cluster)

let exec = Coordinator.exec

let expect_committed outcome =
  match outcome with
  | Mtx.Committed { reads; _ } -> reads
  | o -> Alcotest.failf "expected commit, got %a" Mtx.pp_outcome o

let test_mtx_single_write_read () =
  with_cluster (fun cluster ->
      let w = Mtx.make ~writes:[ Mtx.write_at (addr 0 100) "payload" ] () in
      let (_ : (Address.t * string) list) = expect_committed (exec cluster w) in
      let r = Mtx.make ~reads:[ Mtx.read_at (addr 0 100) 7 ] () in
      match expect_committed (exec cluster r) with
      | [ (a, data) ] ->
          check Alcotest.bool "address" true (Address.equal a (addr 0 100));
          check Alcotest.string "data" "payload" data
      | other -> Alcotest.failf "unexpected read results: %d" (List.length other))

let test_mtx_compare_success_and_failure () =
  with_cluster (fun cluster ->
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 1 0) "abc" ] ()))
      in
      (* Matching compare commits and applies the write. *)
      let ok =
        exec cluster
          (Mtx.make
             ~compares:[ Mtx.compare_at (addr 1 0) "abc" ]
             ~writes:[ Mtx.write_at (addr 1 0) "xyz" ]
             ())
      in
      let (_ : (Address.t * string) list) = expect_committed ok in
      (* Stale compare fails and reports the failing index; write is not
         applied. *)
      (match
         exec cluster
           (Mtx.make
              ~compares:
                [ Mtx.compare_at (addr 1 0) "xyz"; Mtx.compare_at (addr 1 0) "abc" ]
              ~writes:[ Mtx.write_at (addr 1 0) "nope" ]
              ())
       with
      | Mtx.Failed_compare [ 1 ] -> ()
      | o -> Alcotest.failf "expected Failed_compare [1], got %a" Mtx.pp_outcome o);
      match expect_committed (exec cluster (Mtx.make ~reads:[ Mtx.read_at (addr 1 0) 3 ] ())) with
      | [ (_, data) ] -> check Alcotest.string "write not applied" "xyz" data
      | _ -> Alcotest.fail "read failed")

let test_mtx_multi_node_atomic () =
  with_cluster (fun cluster ->
      let mtx =
        Mtx.make
          ~writes:[ Mtx.write_at (addr 0 0) "AA"; Mtx.write_at (addr 2 0) "BB" ]
          ()
      in
      let (_ : (Address.t * string) list) = expect_committed (exec cluster mtx) in
      let reads =
        expect_committed
          (exec cluster
             (Mtx.make ~reads:[ Mtx.read_at (addr 0 0) 2; Mtx.read_at (addr 2 0) 2 ] ()))
      in
      check
        (Alcotest.list Alcotest.string)
        "both applied" [ "AA"; "BB" ]
        (List.map snd reads))

let test_mtx_multi_node_compare_abort () =
  with_cluster (fun cluster ->
      (* Compare on node 0 fails => write on node 2 must not be applied. *)
      (match
         exec cluster
           (Mtx.make
              ~compares:[ Mtx.compare_at (addr 0 0) "nonzero" ]
              ~writes:[ Mtx.write_at (addr 2 0) "XX" ]
              ())
       with
      | Mtx.Failed_compare _ -> ()
      | o -> Alcotest.failf "expected compare failure, got %a" Mtx.pp_outcome o);
      match expect_committed (exec cluster (Mtx.make ~reads:[ Mtx.read_at (addr 2 0) 2 ] ())) with
      | [ (_, data) ] -> check Alcotest.string "atomic abort" "\000\000" data
      | _ -> Alcotest.fail "read failed")

let test_mtx_reads_ordered () =
  with_cluster (fun cluster ->
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster
             (Mtx.make
                ~writes:
                  [
                    Mtx.write_at (addr 0 0) "n0";
                    Mtx.write_at (addr 1 0) "n1";
                    Mtx.write_at (addr 2 0) "n2";
                  ]
                ()))
      in
      let reads =
        expect_committed
          (exec cluster
             (Mtx.make
                ~reads:
                  [
                    Mtx.read_at (addr 2 0) 2; Mtx.read_at (addr 0 0) 2; Mtx.read_at (addr 1 0) 2;
                  ]
                ()))
      in
      check
        (Alcotest.list Alcotest.string)
        "declaration order" [ "n2"; "n0"; "n1" ]
        (List.map snd reads))

let test_mtx_concurrent_counter () =
  (* Classic OCC increment loop: N workers × M increments each, on a
     shared counter, using compare to detect races. Total must be N*M. *)
  with_cluster (fun cluster ->
      let counter_addr = addr 0 0 in
      let encode v =
        let e = Codec.Enc.create () in
        Codec.Enc.i64 e v;
        Codec.Enc.to_string e
      in
      let decode s = Codec.Dec.i64 (Codec.Dec.of_string s) in
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster (Mtx.make ~writes:[ Mtx.write_at counter_addr (encode 0L) ] ()))
      in
      let workers = 8 and increments = 10 in
      let done_count = ref 0 in
      for _ = 1 to workers do
        Sim.spawn (fun () ->
            for _ = 1 to increments do
              let rec attempt () =
                let current =
                  match
                    expect_committed
                      (exec cluster (Mtx.make ~reads:[ Mtx.read_at counter_addr 8 ] ()))
                  with
                  | [ (_, data) ] -> decode data
                  | _ -> Alcotest.fail "read failed"
                in
                match
                  exec cluster
                    (Mtx.make
                       ~compares:[ Mtx.compare_at counter_addr (encode current) ]
                       ~writes:[ Mtx.write_at counter_addr (encode (Int64.add current 1L)) ]
                       ())
                with
                | Mtx.Committed _ -> ()
                | Mtx.Failed_compare _ -> attempt ()
                | o -> Alcotest.failf "unexpected: %a" Mtx.pp_outcome o
              in
              attempt ()
            done;
            incr done_count)
      done;
      Sim.delay 120.0;
      check Alcotest.int "all workers finished" workers !done_count;
      match
        expect_committed (exec cluster (Mtx.make ~reads:[ Mtx.read_at counter_addr 8 ] ()))
      with
      | [ (_, data) ] ->
          check Alcotest.int64 "no lost updates" (Int64.of_int (workers * increments))
            (decode data)
      | _ -> Alcotest.fail "final read failed")

let test_mtx_lock_contention_retries () =
  (* Two writers to the same location retry on busy locks and both
     eventually commit. *)
  with_cluster (fun cluster ->
      let finished = ref 0 in
      for i = 1 to 4 do
        Sim.spawn (fun () ->
            let data = Printf.sprintf "%04d" i in
            let (_ : (Address.t * string) list) =
              expect_committed
                (exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) data ] ()))
            in
            incr finished)
      done;
      Sim.delay 10.0;
      check Alcotest.int "all committed" 4 !finished)

let test_mtx_takes_time () =
  with_cluster (fun cluster ->
      let t0 = Sim.now () in
      let (_ : (Address.t * string) list) =
        expect_committed (exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "x" ] ()))
      in
      let single = Sim.now () -. t0 in
      check Alcotest.bool "nonzero latency" true (single > 0.0);
      let t1 = Sim.now () in
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster
             (Mtx.make
                ~writes:[ Mtx.write_at (addr 0 8) "x"; Mtx.write_at (addr 1 8) "x" ]
                ()))
      in
      let multi = Sim.now () -. t1 in
      check Alcotest.bool "2PC slower than 1PC" true (multi > single))

let test_mtx_blocking_mode () =
  (* A blocking minitransaction waits out a short-lived lock instead of
     abort-retrying. *)
  with_cluster (fun cluster ->
      let store = Memnode.primary (Cluster.memnode cluster 0) in
      let locks = Memnode.store_locks store in
      assert (Lock_table.try_acquire locks ~owner:999L [ range 0 16 ]);
      Sim.spawn (fun () ->
          Sim.delay 0.002;
          Lock_table.release locks ~owner:999L);
      let outcome =
        exec cluster ~mode:Coordinator.Blocking
          (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "held" ] ())
      in
      let (_ : (Address.t * string) list) = expect_committed outcome in
      check Alcotest.bool "no abort-retry happened" true
        (Sim.Metrics.counter_value (Cluster.metrics cluster) "mtx.busy_retries" = 0))

(* ------------------------------------------------------------------ *)
(* Replication and failover                                             *)
(* ------------------------------------------------------------------ *)

let test_replication_mirrors_writes () =
  with_cluster (fun cluster ->
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "replicated" ] ()))
      in
      check Alcotest.bool "mirror happened" true
        (Sim.Metrics.counter_value (Cluster.metrics cluster) "replication.mirrors" > 0);
      (* The replica hosted on the backup node holds the data. *)
      match Cluster.backup_of cluster 0 with
      | None -> Alcotest.fail "replication should be on"
      | Some b -> (
          match Memnode.replica (Cluster.memnode cluster b) ~of_node:0 with
          | None -> Alcotest.fail "no replica store"
          | Some store ->
              check Alcotest.string "replica contents" "replicated"
                (Heap.read (Memnode.store_heap store) ~off:0 ~len:10)))

let test_failover_serves_from_backup () =
  with_cluster (fun cluster ->
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "before" ] ()))
      in
      Cluster.crash cluster 0;
      (* Reads of node 0's space still succeed, served by the backup. *)
      (match expect_committed (exec cluster (Mtx.make ~reads:[ Mtx.read_at (addr 0 0) 6 ] ())) with
      | [ (_, data) ] -> check Alcotest.string "failover read" "before" data
      | _ -> Alcotest.fail "read failed");
      (* Writes during failover hit the replica. *)
      let (_ : (Address.t * string) list) =
        expect_committed
          (exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "during" ] ()))
      in
      Cluster.recover cluster 0;
      match expect_committed (exec cluster (Mtx.make ~reads:[ Mtx.read_at (addr 0 0) 6 ] ())) with
      | [ (_, data) ] -> check Alcotest.string "state recovered" "during" data
      | _ -> Alcotest.fail "read failed")

let test_unavailable_without_replication () =
  let config = { Config.default with replication = false } in
  with_cluster ~config (fun cluster ->
      Cluster.crash cluster 0;
      match exec cluster (Mtx.make ~reads:[ Mtx.read_at (addr 0 0) 1 ] ()) with
      | Mtx.Unavailable { maybe_applied = false; partitioned = false } -> ()
      | o -> Alcotest.failf "expected Unavailable, got %a" Mtx.pp_outcome o)

let test_recovery_releases_orphans () =
  (* A coordinator "crashes" after phase one: its locks are stranded at
     a memnode until the recovery daemon releases them, after which
     blocked minitransactions proceed. *)
  with_cluster (fun cluster ->
      Cluster.start_recovery ~lease:0.25 ~interval:0.1 cluster;
      (* Strand locks at node 0 by preparing and never finishing. *)
      let mn = Cluster.memnode cluster 0 in
      let store = Memnode.primary mn in
      let part =
        Memnode.part_of_mtx (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "stranded" ] ()) ~node:0
      in
      (match Memnode.prepare store ~owner:424242L part with
      | Memnode.Prepared _ -> ()
      | _ -> Alcotest.fail "prepare failed");
      check Alcotest.bool "locks held" true (Lock_table.holds (Memnode.store_locks store) ~owner:424242L);
      (* A competing write keeps retrying until recovery clears the way. *)
      let committed_at = ref nan in
      Sim.spawn (fun () ->
          match Coordinator.exec cluster (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "winner!!" ] ()) with
          | Mtx.Committed _ -> committed_at := Sim.now ()
          | o -> Alcotest.failf "expected commit, got %a" Mtx.pp_outcome o);
      Sim.delay 5.0;
      check Alcotest.bool "competitor committed" true (Float.is_finite !committed_at);
      check Alcotest.bool "after the lease" true (!committed_at >= 0.25);
      check Alcotest.bool "orphan released" false
        (Lock_table.holds (Memnode.store_locks store) ~owner:424242L);
      check Alcotest.bool "recovery counted" true
        (Sim.Metrics.counter_value (Cluster.metrics cluster) "recovery.orphans_released" > 0);
      (* The recovery daemon loops forever; end the simulation. *)
      Sim.stop ())

(* ------------------------------------------------------------------ *)
(* Orphaned-lock recovery lease boundaries                              *)
(* ------------------------------------------------------------------ *)

let range start len mode = { Lock_table.start; len; mode }

let test_lease_exact_boundary_not_stolen () =
  (* The cutoff is strict: a lock held for *exactly* the lease is still
     within its lease and must not be stolen. Only strictly older locks
     are orphan candidates. *)
  Sim.run (fun () ->
      let mn = Memnode.create ~id:0 ~cores:1 ~heap_capacity:4096 () in
      let locks = Memnode.store_locks (Memnode.primary mn) in
      check Alcotest.bool "acquired" true
        (Lock_table.try_acquire locks ~owner:1L [ range 0 16 Lock_table.Exclusive ]);
      Sim.delay 0.25;
      let stolen = Memnode.recover_orphaned_locks mn ~lease:0.25 in
      check Alcotest.int "exact-lease lock kept" 0 stolen;
      check Alcotest.bool "still held" true (Lock_table.holds locks ~owner:1L);
      (* One tick past the lease it becomes an orphan. *)
      Sim.delay 1e-6;
      let stolen = Memnode.recover_orphaned_locks mn ~lease:0.25 in
      check Alcotest.int "expired lock stolen" 1 stolen;
      check Alcotest.bool "released" false (Lock_table.holds locks ~owner:1L))

let test_lease_reacquire_after_release () =
  (* An owner whose locks were reaped can come back: a fresh acquisition
     under the same owner id starts a fresh lease. *)
  Sim.run (fun () ->
      let mn = Memnode.create ~id:0 ~cores:1 ~heap_capacity:4096 () in
      let locks = Memnode.store_locks (Memnode.primary mn) in
      check Alcotest.bool "first acquire" true
        (Lock_table.try_acquire locks ~owner:9L [ range 0 16 Lock_table.Exclusive ]);
      Sim.delay 0.3;
      check Alcotest.int "reaped" 1 (Memnode.recover_orphaned_locks mn ~lease:0.25);
      check Alcotest.bool "second acquire succeeds" true
        (Lock_table.try_acquire locks ~owner:9L [ range 0 16 Lock_table.Exclusive ]);
      (* The fresh lock is inside its own lease, not tainted by history. *)
      check Alcotest.int "fresh lock kept" 0 (Memnode.recover_orphaned_locks mn ~lease:0.25);
      check Alcotest.bool "held" true (Lock_table.holds locks ~owner:9L))

let test_lease_live_coordinator_not_stolen () =
  (* Recovery is selective: only locks past the lease go. A concurrent
     live coordinator (fresh locks, even overlapping key space on other
     ranges) keeps everything. *)
  Sim.run (fun () ->
      let mn = Memnode.create ~id:0 ~cores:1 ~heap_capacity:4096 () in
      let locks = Memnode.store_locks (Memnode.primary mn) in
      check Alcotest.bool "stale owner" true
        (Lock_table.try_acquire locks ~owner:100L [ range 0 16 Lock_table.Exclusive ]);
      Sim.delay 0.2;
      check Alcotest.bool "live owner" true
        (Lock_table.try_acquire locks ~owner:200L [ range 32 16 Lock_table.Exclusive ]);
      Sim.delay 0.1;
      (* Stale is now 0.3 old (> lease), live is 0.1 old (< lease). *)
      check Alcotest.int "only the stale owner reaped" 1
        (Memnode.recover_orphaned_locks mn ~lease:0.25);
      check Alcotest.bool "stale released" false (Lock_table.holds locks ~owner:100L);
      check Alcotest.bool "live untouched" true (Lock_table.holds locks ~owner:200L))

(* ------------------------------------------------------------------ *)
(* Redo log and crash recovery                                          *)
(* ------------------------------------------------------------------ *)

let test_redo_replay_idempotent () =
  Sim.run (fun () ->
      let log = Redo_log.create () in
      Redo_log.append log ~tid:7L ~participants:[ 0 ]
        ~writes:[ Mtx.write_at (addr 0 0) "abcd" ];
      check Alcotest.bool "in doubt after prepare" true (Redo_log.voted log ~tid:7L);
      (match Redo_log.decide_commit log ~tid:7L ~stamp:10L with
      | `Apply -> ()
      | `Skip -> Alcotest.fail "first decision must apply");
      (* Duplicate decision — a live coordinator racing the recovery
         coordinator — must not re-apply over later state. *)
      (match Redo_log.decide_commit log ~tid:7L ~stamp:10L with
      | `Skip -> ()
      | `Apply -> Alcotest.fail "duplicate decision must not re-apply");
      let heap = Heap.create ~capacity:1024 () in
      check Alcotest.int "one commit replayed" 1 (Redo_log.replay log ~heap);
      check Alcotest.string "writes applied" "abcd" (Heap.read heap ~off:0 ~len:4);
      (* Replay is idempotent: a second pass finds nothing new and
         leaves the heap untouched. *)
      check Alcotest.int "second replay empty" 0 (Redo_log.replay log ~heap);
      check Alcotest.string "heap unchanged" "abcd" (Heap.read heap ~off:0 ~len:4))

let test_mid_crash_raises () =
  (* crash_now lands under an in-flight timed operation: the operation
     raises Crashed at its next service boundary, before it could log a
     vote against wiped lock state. *)
  Sim.run (fun () ->
      let mn = Memnode.create ~id:0 ~cores:1 ~heap_capacity:4096 () in
      let store = Memnode.primary mn in
      let part =
        Memnode.part_of_mtx (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "torn" ] ()) ~node:0
      in
      let raised = ref false in
      Sim.spawn (fun () ->
          match Memnode.prepare_timed mn store ~owner:1L ~participants:[ 0 ] part ~cost:0.01 with
          | (_ : Memnode.prepare_result) -> ()
          | exception Memnode.Crashed -> raised := true);
      Sim.delay 0.005;
      Memnode.crash_now mn;
      Sim.delay 0.1;
      check Alcotest.bool "raised mid-request" true !raised;
      check Alcotest.bool "epoch bumped" true (Memnode.epoch mn > 0);
      check Alcotest.bool "no vote logged" false (Redo_log.voted (Memnode.store_redo store) ~tid:1L))

let test_try_recover_typed_errors () =
  with_cluster (fun cluster ->
      (match Cluster.try_recover cluster 0 with
      | Error Cluster.Not_crashed -> ()
      | Ok () -> Alcotest.fail "recovered an alive node"
      | Error e -> Alcotest.failf "wrong error: %s" (Cluster.recover_error_to_string e));
      (* The legacy interface still raises. *)
      (match Cluster.recover cluster 0 with
      | () -> Alcotest.fail "legacy recover must raise"
      | exception Invalid_argument _ -> ());
      Cluster.crash cluster 0;
      let rec wait () =
        if not (Memnode.crashed (Cluster.memnode cluster 0)) then begin
          Sim.delay 1e-3;
          wait ()
        end
      in
      wait ();
      (match Cluster.try_recover cluster 0 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "recovery refused: %s" (Cluster.recover_error_to_string e));
      check Alcotest.bool "alive again" true (Memnode.available (Cluster.memnode cluster 0)))

let test_try_recover_no_replica () =
  let config = { Config.default with replication = false } in
  with_cluster ~config (fun cluster ->
      Cluster.crash cluster 0;
      let rec wait () =
        if not (Memnode.crashed (Cluster.memnode cluster 0)) then begin
          Sim.delay 1e-3;
          wait ()
        end
      in
      wait ();
      match Cluster.try_recover cluster 0 with
      | Error Cluster.No_replica -> ()
      | Ok () -> Alcotest.fail "recovered without a replica"
      | Error e -> Alcotest.failf "wrong error: %s" (Cluster.recover_error_to_string e))

let test_blocking_race_crash_drain () =
  (* A blocking minitransaction waiting on a busy lock pins the node as
     serving; a drain-mode crash requested meanwhile stays pending until
     the blocking wait resolves (here: times out), then lands. The
     waiter gets a clean outcome either way — served by the replica
     after failover or reported unavailable — never a torn one. *)
  with_cluster (fun cluster ->
      let store = Memnode.primary (Cluster.memnode cluster 0) in
      let locks = Memnode.store_locks store in
      assert
        (Lock_table.try_acquire locks ~owner:777L [ range 0 16 Lock_table.Exclusive ]);
      let outcome = ref None in
      Sim.spawn (fun () ->
          outcome :=
            Some
              (exec cluster ~mode:Coordinator.Blocking
                 (Mtx.make ~writes:[ Mtx.write_at (addr 0 0) "blocked!" ] ())));
      Sim.delay 1e-3;
      Cluster.crash cluster 0;
      check Alcotest.bool "drain pending behind blocking wait" true
        (Memnode.crash_pending (Cluster.memnode cluster 0));
      let rec wait n =
        if n = 0 then Alcotest.fail "blocking wait never resolved against the drain";
        if !outcome = None || not (Memnode.crashed (Cluster.memnode cluster 0)) then begin
          Sim.delay 0.01;
          wait (n - 1)
        end
      in
      wait 10_000;
      check Alcotest.bool "crash landed" true (Memnode.crashed (Cluster.memnode cluster 0)))

let test_mid_crash_in_doubt_resolved () =
  (* End to end: 2PC traffic over two spaces, a mid-2PC crash of node 0,
     retried recovery, then quiescence. The in-doubt set must drain and
     both cells of the pair — always written under one lock set — must
     agree, whatever subset of transactions the crash cut short. *)
  with_cluster (fun cluster ->
      Cluster.start_recovery ~lease:0.05 ~interval:0.01 cluster;
      let pair data =
        Mtx.make ~writes:[ Mtx.write_at (addr 0 0) data; Mtx.write_at (addr 1 0) data ] ()
      in
      let (_ : (Address.t * string) list) = expect_committed (exec cluster (pair "0000")) in
      let finished = ref 0 in
      for w = 1 to 6 do
        Sim.spawn (fun () ->
            for i = 1 to 5 do
              let (_ : Mtx.outcome) = exec cluster (pair (Printf.sprintf "%d%03d" w i)) in
              ()
            done;
            incr finished)
      done;
      Sim.delay 0.01;
      Cluster.crash_now cluster 0;
      Sim.delay 0.05;
      let rec recover_retry () =
        match Cluster.try_recover cluster 0 with
        | Ok () -> ()
        | Error _ ->
            Sim.delay 0.01;
            recover_retry ()
      in
      recover_retry ();
      while !finished < 6 do
        Sim.delay 0.01
      done;
      (* Let the resolver pass the in-doubt grace period. *)
      Sim.delay 1.0;
      check Alcotest.int "in-doubt drained" 0 (Cluster.in_doubt_total cluster);
      (match
         expect_committed
           (exec cluster
              (Mtx.make ~reads:[ Mtx.read_at (addr 0 0) 4; Mtx.read_at (addr 1 0) 4 ] ()))
       with
      | [ (_, a); (_, b) ] -> check Alcotest.string "atomic pair" a b
      | _ -> Alcotest.fail "final read failed");
      (* Decision records must agree across the two spaces. *)
      let by_tid = Hashtbl.create 64 in
      List.iter
        (fun (_, tid, d) ->
          match Hashtbl.find_opt by_tid tid with
          | None -> Hashtbl.replace by_tid tid d
          | Some d' ->
              if d <> d' then
                Alcotest.failf "split decision for tid %Ld" tid)
        (Cluster.redo_decisions cluster);
      (* The recovery daemon loops forever; end the simulation. *)
      Sim.stop ())

let () =
  Alcotest.run "sinfonia"
    [
      ( "address",
        [
          Alcotest.test_case "basics" `Quick test_address_basics;
          Alcotest.test_case "codec" `Quick test_address_codec;
        ] );
      ( "heap",
        [
          Alcotest.test_case "read/write" `Quick test_heap_read_write;
          Alcotest.test_case "overwrite" `Quick test_heap_overwrite;
          Alcotest.test_case "capacity" `Quick test_heap_capacity;
          Alcotest.test_case "equal_at" `Quick test_heap_equal_at;
          Alcotest.test_case "snapshot/restore" `Quick test_heap_snapshot_restore;
          Alcotest.test_case "page boundaries" `Quick test_heap_page_boundaries;
          Alcotest.test_case "sparse high offset" `Quick test_heap_sparse_high_offset;
          QCheck_alcotest.to_alcotest prop_heap_matches_reference;
        ] );
      ( "locks",
        [
          Alcotest.test_case "basic" `Quick test_locks_basic;
          Alcotest.test_case "all or nothing" `Quick test_locks_all_or_nothing;
          Alcotest.test_case "same owner overlap" `Quick test_locks_same_owner_overlap;
          Alcotest.test_case "adjacent no conflict" `Quick test_locks_adjacent_no_conflict;
          Alcotest.test_case "shared modes" `Quick test_locks_shared_modes;
          Alcotest.test_case "invalid range" `Quick test_locks_invalid_range;
          Alcotest.test_case "blocking success" `Quick test_locks_blocking_success;
          Alcotest.test_case "blocking timeout" `Quick test_locks_blocking_timeout;
          Alcotest.test_case "blocking queue" `Quick test_locks_blocking_queue;
        ] );
      ( "minitransactions",
        [
          Alcotest.test_case "memnodes/items" `Quick test_mtx_memnodes;
          Alcotest.test_case "single write/read" `Quick test_mtx_single_write_read;
          Alcotest.test_case "compare success/failure" `Quick test_mtx_compare_success_and_failure;
          Alcotest.test_case "multi-node atomic" `Quick test_mtx_multi_node_atomic;
          Alcotest.test_case "multi-node compare abort" `Quick test_mtx_multi_node_compare_abort;
          Alcotest.test_case "reads ordered" `Quick test_mtx_reads_ordered;
          Alcotest.test_case "concurrent counter (no lost updates)" `Quick
            test_mtx_concurrent_counter;
          Alcotest.test_case "lock contention retries" `Quick test_mtx_lock_contention_retries;
          Alcotest.test_case "latency model" `Quick test_mtx_takes_time;
          Alcotest.test_case "blocking mode" `Quick test_mtx_blocking_mode;
        ] );
      ( "replication",
        [
          Alcotest.test_case "recovery releases orphans" `Quick test_recovery_releases_orphans;
          Alcotest.test_case "lease boundary strict" `Quick test_lease_exact_boundary_not_stolen;
          Alcotest.test_case "reacquire after reap" `Quick test_lease_reacquire_after_release;
          Alcotest.test_case "live coordinator kept" `Quick
            test_lease_live_coordinator_not_stolen;
          Alcotest.test_case "mirrors writes" `Quick test_replication_mirrors_writes;
          Alcotest.test_case "failover" `Quick test_failover_serves_from_backup;
          Alcotest.test_case "unavailable without replication" `Quick
            test_unavailable_without_replication;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "redo replay idempotent" `Quick test_redo_replay_idempotent;
          Alcotest.test_case "mid-crash raises" `Quick test_mid_crash_raises;
          Alcotest.test_case "try_recover typed errors" `Quick test_try_recover_typed_errors;
          Alcotest.test_case "try_recover no replica" `Quick test_try_recover_no_replica;
          Alcotest.test_case "blocking vs crash drain" `Quick test_blocking_race_crash_drain;
          Alcotest.test_case "mid-crash in-doubt resolved" `Quick
            test_mid_crash_in_doubt_resolved;
        ] );
    ]
