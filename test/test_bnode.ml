(* Tests for pure B-tree node operations and their codec. *)

let check = Alcotest.check

open Btree
module Objref = Dyntxn.Objref

let ref_ node off = Objref.make ~addr:(Sinfonia.Address.make ~node ~off) ~len:4096

let leaf ?(low = Bkey.Neg_inf) ?(high = Bkey.Pos_inf) ?(snap = 0L) entries =
  Bnode.make_leaf ~low ~high ~snap (Array.of_list entries)

let internal ?(low = Bkey.Neg_inf) ?(high = Bkey.Pos_inf) ?(snap = 0L) ~height keys children =
  Bnode.make_internal ~height ~low ~high ~snap ~keys:(Array.of_list keys)
    ~children:(Array.of_list children)

(* ------------------------------------------------------------------ *)
(* Fences                                                               *)
(* ------------------------------------------------------------------ *)

let test_fence_order () =
  check Alcotest.bool "neg < key" true (Bkey.fence_compare Bkey.Neg_inf (Bkey.Key "a") < 0);
  check Alcotest.bool "key < pos" true (Bkey.fence_compare (Bkey.Key "z") Bkey.Pos_inf < 0);
  check Alcotest.bool "key order" true (Bkey.fence_compare (Bkey.Key "a") (Bkey.Key "b") < 0);
  check Alcotest.bool "equal" true (Bkey.fence_equal (Bkey.Key "a") (Bkey.Key "a"));
  check Alcotest.bool "neg = neg" true (Bkey.fence_equal Bkey.Neg_inf Bkey.Neg_inf)

let test_in_range () =
  check Alcotest.bool "inside" true (Bkey.in_range "m" ~low:(Bkey.Key "a") ~high:(Bkey.Key "z"));
  check Alcotest.bool "low inclusive" true
    (Bkey.in_range "a" ~low:(Bkey.Key "a") ~high:(Bkey.Key "z"));
  check Alcotest.bool "high exclusive" false
    (Bkey.in_range "z" ~low:(Bkey.Key "a") ~high:(Bkey.Key "z"));
  check Alcotest.bool "below" false (Bkey.in_range "0" ~low:(Bkey.Key "a") ~high:(Bkey.Key "z"));
  check Alcotest.bool "full range" true (Bkey.in_range "" ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf)

let test_fence_codec () =
  let roundtrip f =
    let e = Codec.Enc.create () in
    Bkey.encode_fence e f;
    Bkey.decode_fence (Codec.Dec.of_string (Codec.Enc.to_string e))
  in
  List.iter
    (fun f -> check Alcotest.bool "fence roundtrip" true (Bkey.fence_equal f (roundtrip f)))
    [ Bkey.Neg_inf; Bkey.Pos_inf; Bkey.Key ""; Bkey.Key "some key" ]

(* ------------------------------------------------------------------ *)
(* Leaf operations                                                      *)
(* ------------------------------------------------------------------ *)

let test_leaf_insert_find () =
  let n = leaf [] in
  let n = Bnode.leaf_insert n "b" "2" in
  let n = Bnode.leaf_insert n "a" "1" in
  let n = Bnode.leaf_insert n "c" "3" in
  check (Alcotest.option Alcotest.string) "a" (Some "1") (Bnode.leaf_find n "a");
  check (Alcotest.option Alcotest.string) "b" (Some "2") (Bnode.leaf_find n "b");
  check (Alcotest.option Alcotest.string) "c" (Some "3") (Bnode.leaf_find n "c");
  check (Alcotest.option Alcotest.string) "missing" None (Bnode.leaf_find n "d");
  check
    (Alcotest.list Alcotest.string)
    "sorted" [ "a"; "b"; "c" ]
    (Array.to_list (Array.map fst (Bnode.leaf_entries n)))

let test_leaf_insert_replace () =
  let n = leaf [ ("a", "1") ] in
  let n = Bnode.leaf_insert n "a" "updated" in
  check Alcotest.int "no duplicate" 1 (Bnode.nkeys n);
  check (Alcotest.option Alcotest.string) "replaced" (Some "updated") (Bnode.leaf_find n "a")

let test_leaf_remove () =
  let n = leaf [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  (match Bnode.leaf_remove n "b" with
  | None -> Alcotest.fail "should remove"
  | Some n' ->
      check Alcotest.int "two left" 2 (Bnode.nkeys n');
      check (Alcotest.option Alcotest.string) "gone" None (Bnode.leaf_find n' "b");
      check (Alcotest.option Alcotest.string) "kept" (Some "1") (Bnode.leaf_find n' "a"));
  check Alcotest.bool "absent" true (Bnode.leaf_remove n "x" = None)

let test_leaf_entries_from () =
  let n = leaf [ ("a", "1"); ("c", "3"); ("e", "5") ] in
  check Alcotest.int "from existing" 1 (Bnode.leaf_entries_from n "c");
  check Alcotest.int "from between" 1 (Bnode.leaf_entries_from n "b");
  check Alcotest.int "from start" 0 (Bnode.leaf_entries_from n "");
  check Alcotest.int "past end" 3 (Bnode.leaf_entries_from n "z")

(* ------------------------------------------------------------------ *)
(* Internal node operations                                             *)
(* ------------------------------------------------------------------ *)

let c0 = ref_ 0 4096

let c1 = ref_ 1 4096

let c2 = ref_ 2 4096

let c3 = ref_ 0 8192

let test_child_for () =
  let n = internal ~height:1 [ "g"; "p" ] [ c0; c1; c2 ] in
  let idx k = fst (Bnode.child_for n k) in
  check Alcotest.int "below g" 0 (idx "a");
  check Alcotest.int "at g" 1 (idx "g");
  check Alcotest.int "between" 1 (idx "m");
  check Alcotest.int "at p" 2 (idx "p");
  check Alcotest.int "above" 2 (idx "z")

let test_child_fences () =
  let n = internal ~low:(Bkey.Key "a") ~high:(Bkey.Key "z") ~height:1 [ "g"; "p" ] [ c0; c1; c2 ] in
  let f i = Bnode.child_fences n i in
  check Alcotest.bool "first" true
    (f 0 = (Bkey.Key "a", Bkey.Key "g") && f 1 = (Bkey.Key "g", Bkey.Key "p"));
  check Alcotest.bool "last" true (f 2 = (Bkey.Key "p", Bkey.Key "z"))

let test_replace_child () =
  let n = internal ~height:1 [ "g" ] [ c0; c1 ] in
  let n' = Bnode.replace_child n 1 c2 in
  check Alcotest.bool "replaced" true (Objref.equal (Bnode.child_at n' 1) c2);
  check Alcotest.bool "other untouched" true (Objref.equal (Bnode.child_at n' 0) c0)

let test_insert_sep () =
  (* Child at index 1 split with separator "m": new right child c3. *)
  let n = internal ~height:1 [ "g"; "p" ] [ c0; c1; c2 ] in
  let n' = Bnode.insert_sep n ~at:1 ~sep:"m" ~right:c3 in
  check Alcotest.int "three seps" 3 (Bnode.nkeys n');
  let idx k = fst (Bnode.child_for n' k) in
  check Alcotest.int "h -> left half" 1 (idx "h");
  check Alcotest.int "m -> new right" 2 (idx "m");
  check Alcotest.int "n -> new right" 2 (idx "n");
  check Alcotest.int "p -> old last" 3 (idx "p");
  check Alcotest.bool "new child" true (Objref.equal (Bnode.child_at n' 2) c3)

(* ------------------------------------------------------------------ *)
(* Split                                                                *)
(* ------------------------------------------------------------------ *)

let test_split_leaf () =
  let n = leaf ~low:(Bkey.Key "a") ~high:(Bkey.Key "z") [ ("b", "1"); ("d", "2"); ("f", "3"); ("h", "4") ] in
  let l, sep, r = Bnode.split n in
  check Alcotest.string "separator" "f" sep;
  check Alcotest.bool "left fences" true (l.Bnode.low = Bkey.Key "a" && l.Bnode.high = Bkey.Key "f");
  check Alcotest.bool "right fences" true (r.Bnode.low = Bkey.Key "f" && r.Bnode.high = Bkey.Key "z");
  check Alcotest.int "left size" 2 (Bnode.nkeys l);
  check Alcotest.int "right size" 2 (Bnode.nkeys r);
  check Alcotest.bool "left valid" true (Bnode.check l = Ok ());
  check Alcotest.bool "right valid" true (Bnode.check r = Ok ())

let test_split_internal () =
  let kids = [ c0; c1; c2; c3; ref_ 1 8192 ] in
  let n = internal ~height:2 [ "d"; "h"; "m"; "r" ] kids in
  let l, sep, r = Bnode.split n in
  check Alcotest.string "separator" "m" sep;
  (* The separator moves up: neither side keeps it. *)
  check Alcotest.int "left keys" 2 (Bnode.nkeys l);
  check Alcotest.int "right keys" 1 (Bnode.nkeys r);
  check Alcotest.bool "left valid" true (Bnode.check l = Ok ());
  check Alcotest.bool "right valid" true (Bnode.check r = Ok ());
  (* Every child is retained exactly once. *)
  let children node =
    match node.Bnode.body with
    | Bnode.Internal { children; _ } -> Array.to_list children
    | Bnode.Leaf _ -> []
  in
  check Alcotest.int "children preserved" 5 (List.length (children l @ children r))

let test_split_too_small () =
  match Bnode.split (leaf [ ("a", "1") ]) with
  | (_ : Bnode.t * Bkey.t * Bnode.t) -> Alcotest.fail "split of singleton leaf"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Copy-on-write metadata                                               *)
(* ------------------------------------------------------------------ *)

let test_snap_metadata () =
  let n = leaf ~snap:3L [ ("a", "1") ] in
  check Alcotest.int64 "created" 3L n.Bnode.snap_created;
  let copy = Bnode.with_snap n 5L in
  check Alcotest.int64 "copy snap" 5L copy.Bnode.snap_created;
  check Alcotest.int "copy descendants empty" 0 (Array.length copy.Bnode.descendants);
  let marked = Bnode.add_descendant n 5L in
  check Alcotest.bool "descendant recorded" true (Array.mem 5L marked.Bnode.descendants);
  let replaced = Bnode.with_descendants marked [| 7L; 9L |] in
  check Alcotest.int "replaced" 2 (Array.length replaced.Bnode.descendants)

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)
(* ------------------------------------------------------------------ *)

let node_equal (a : Bnode.t) (b : Bnode.t) =
  a.Bnode.height = b.Bnode.height
  && Bkey.fence_equal a.Bnode.low b.Bnode.low
  && Bkey.fence_equal a.Bnode.high b.Bnode.high
  && Int64.equal a.Bnode.snap_created b.Bnode.snap_created
  && a.Bnode.descendants = b.Bnode.descendants
  &&
  match (a.Bnode.body, b.Bnode.body) with
  | Bnode.Leaf x, Bnode.Leaf y -> x = y
  | Bnode.Internal x, Bnode.Internal y ->
      x.keys = y.keys && Array.for_all2 Objref.equal x.children y.children
  | _ -> false

let test_codec_roundtrip () =
  let nodes =
    [
      leaf [];
      leaf ~low:(Bkey.Key "a") ~high:(Bkey.Key "b") ~snap:42L [ ("a", "value") ];
      Bnode.with_descendants (leaf [ ("k", "v") ]) [| 1L; 2L; 3L |];
      internal ~height:1 [ "g" ] [ c0; c1 ];
      internal ~height:7 ~low:(Bkey.Key "c") ~high:Bkey.Pos_inf ~snap:9L [ "g"; "p" ]
        [ c0; c1; c2 ];
    ]
  in
  List.iter
    (fun n ->
      check Alcotest.bool "roundtrip" true (node_equal n (Bnode.decode (Bnode.encode n))))
    nodes

let arbitrary_leaf =
  let open QCheck in
  let keyval = pair (string_of_size (Gen.int_range 1 20)) (string_of_size (Gen.int_range 0 16)) in
  map
    (fun (entries, snap) ->
      let sorted =
        List.sort_uniq (fun (a, _) (b, _) -> Bkey.compare a b) entries |> Array.of_list
      in
      {
        (Bnode.make_leaf ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap:(Int64.of_int snap) sorted)
        with
        Bnode.descendants = [||];
      })
    (pair (small_list keyval) small_nat)

let prop_leaf_codec_roundtrip =
  QCheck.Test.make ~name:"leaf codec roundtrip" ~count:300 arbitrary_leaf (fun n ->
      node_equal n (Bnode.decode (Bnode.encode n)))

let prop_leaf_insert_sorted =
  let open QCheck in
  QCheck.Test.make ~name:"leaf insert keeps sorted unique" ~count:300
    (small_list (pair (string_of_size (Gen.int_range 1 8)) string))
    (fun ops ->
      let n = List.fold_left (fun n (k, v) -> Bnode.leaf_insert n k v) (leaf []) ops in
      Bnode.check n = Ok ())

let prop_split_preserves_entries =
  QCheck.Test.make ~name:"split preserves leaf entries" ~count:300 arbitrary_leaf (fun n ->
      QCheck.assume (Bnode.nkeys n >= 2);
      let l, sep, r = Bnode.split n in
      let merged = Array.append (Bnode.leaf_entries l) (Bnode.leaf_entries r) in
      merged = Bnode.leaf_entries n
      && Array.for_all (fun (k, _) -> Bkey.compare k sep < 0) (Bnode.leaf_entries l)
      && Array.for_all (fun (k, _) -> Bkey.compare k sep >= 0) (Bnode.leaf_entries r))

let prop_leaf_model =
  (* leaf_insert/leaf_remove against a Map model. *)
  let open QCheck in
  let op =
    oneof
      [
        map (fun (k, v) -> `Put (k, v)) (pair (string_of_size (Gen.int_range 1 4)) small_string);
        map (fun k -> `Del k) (string_of_size (Gen.int_range 1 4));
      ]
  in
  QCheck.Test.make ~name:"leaf matches map model" ~count:300 (small_list op) (fun ops ->
      let module M = Map.Make (String) in
      let node, model =
        List.fold_left
          (fun (node, model) -> function
            | `Put (k, v) -> (Bnode.leaf_insert node k v, M.add k v model)
            | `Del k -> (
                match Bnode.leaf_remove node k with
                | Some node' -> (node', M.remove k model)
                | None -> (node, model)))
          (leaf [], M.empty) ops
      in
      M.bindings model = Array.to_list (Bnode.leaf_entries node))

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

let test_check_catches_violations () =
  let bad_sort =
    Bnode.make_leaf ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap:0L [| ("b", "1"); ("a", "2") |]
  in
  check Alcotest.bool "unsorted" true (Result.is_error (Bnode.check bad_sort));
  let out_of_fence =
    Bnode.make_leaf ~low:(Bkey.Key "m") ~high:Bkey.Pos_inf ~snap:0L [| ("a", "1") |]
  in
  check Alcotest.bool "out of fence" true (Result.is_error (Bnode.check out_of_fence));
  let good = leaf [ ("a", "1"); ("b", "2") ] in
  check Alcotest.bool "good" true (Bnode.check good = Ok ())

let () =
  Alcotest.run "bnode"
    [
      ( "fences",
        [
          Alcotest.test_case "ordering" `Quick test_fence_order;
          Alcotest.test_case "in_range" `Quick test_in_range;
          Alcotest.test_case "codec" `Quick test_fence_codec;
        ] );
      ( "leaf",
        [
          Alcotest.test_case "insert/find" `Quick test_leaf_insert_find;
          Alcotest.test_case "insert replaces" `Quick test_leaf_insert_replace;
          Alcotest.test_case "remove" `Quick test_leaf_remove;
          Alcotest.test_case "entries_from" `Quick test_leaf_entries_from;
        ] );
      ( "internal",
        [
          Alcotest.test_case "child_for" `Quick test_child_for;
          Alcotest.test_case "child_fences" `Quick test_child_fences;
          Alcotest.test_case "replace_child" `Quick test_replace_child;
          Alcotest.test_case "insert_sep" `Quick test_insert_sep;
        ] );
      ( "split",
        [
          Alcotest.test_case "leaf" `Quick test_split_leaf;
          Alcotest.test_case "internal" `Quick test_split_internal;
          Alcotest.test_case "too small" `Quick test_split_too_small;
        ] );
      ("cow-metadata", [ Alcotest.test_case "snap metadata" `Quick test_snap_metadata ]);
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "check" `Quick test_check_catches_violations;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_leaf_codec_roundtrip;
            prop_leaf_insert_sorted;
            prop_split_preserves_entries;
            prop_leaf_model;
          ] );
    ]
