(* Tests for the YCSB-style workload generator and driver. *)

let check = Alcotest.check

let rng () = Sim.Rng.create 11

(* ------------------------------------------------------------------ *)
(* Keygen                                                               *)
(* ------------------------------------------------------------------ *)

let test_key_format () =
  check Alcotest.int "14 bytes" 14 (String.length (Ycsb.Keygen.key_of_int 0));
  check Alcotest.int "14 bytes big" 14 (String.length (Ycsb.Keygen.key_of_int 999_999_999));
  check Alcotest.bool "order preserved" true
    (Ycsb.Keygen.key_of_int 5 < Ycsb.Keygen.key_of_int 50);
  check Alcotest.int "hashed 14 bytes" 14 (String.length (Ycsb.Keygen.hashed_key_of_int 123))

let test_hashed_keys_distinct () =
  let seen = Hashtbl.create 1000 in
  for i = 0 to 9999 do
    let k = Ycsb.Keygen.hashed_key_of_int i in
    if Hashtbl.mem seen k then Alcotest.failf "collision at %d" i;
    Hashtbl.add seen k ()
  done

let test_uniform_range_and_coverage () =
  let g = Ycsb.Keygen.uniform ~n:50 in
  let r = rng () in
  let seen = Array.make 50 false in
  for _ = 1 to 5000 do
    let v = Ycsb.Keygen.next g r in
    if v < 0 || v >= 50 then Alcotest.fail "out of range";
    seen.(v) <- true
  done;
  Array.iteri (fun i b -> check Alcotest.bool (string_of_int i) true b) seen

let test_zipfian_skew () =
  let g = Ycsb.Keygen.zipfian ~n:1000 () in
  let r = rng () in
  let counts = Hashtbl.create 64 in
  let samples = 50_000 in
  for _ = 1 to samples do
    let v = Ycsb.Keygen.next g r in
    if v < 0 || v >= 1000 then Alcotest.fail "out of range";
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  (* Popularity concentrates: the hottest item vastly exceeds the
     uniform share, and a small set of items covers a large share. *)
  let sorted = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] |> List.sort (fun a b -> b - a) in
  let hottest = List.hd sorted in
  check Alcotest.bool "hot item is hot" true (hottest > 10 * (samples / 1000));
  let top20 = List.filteri (fun i _ -> i < 20) sorted |> List.fold_left ( + ) 0 in
  check Alcotest.bool "top 20 items >25% of traffic" true
    (float_of_int top20 /. float_of_int samples > 0.25)

let test_zipfian_grows () =
  let g = Ycsb.Keygen.zipfian ~n:100 () in
  let r = rng () in
  Ycsb.Keygen.set_n g 200;
  check Alcotest.int "n updated" 200 (Ycsb.Keygen.current_n g);
  for _ = 1 to 1000 do
    let v = Ycsb.Keygen.next g r in
    if v < 0 || v >= 200 then Alcotest.fail "out of grown range"
  done

let test_hotspot_concentration () =
  (* 80% of ops must land in the leading 10% of the ordinal space (the
     hot set sits at the front so it maps to a contiguous key range). *)
  let n = 1000 in
  let g = Ycsb.Keygen.hotspot ~op_frac:0.8 ~key_frac:0.1 ~n () in
  let r = rng () in
  let hot = ref 0 and total = 20_000 in
  for _ = 1 to total do
    let v = Ycsb.Keygen.next g r in
    if v < 0 || v >= n then Alcotest.fail "out of range";
    if v < 100 then incr hot
  done;
  let hot_share = float_of_int !hot /. float_of_int total in
  (* Cold draws are uniform over the whole space, so they add another
     ~0.2 * 0.1 = 2% to the hot range on top of the 80%. *)
  check Alcotest.bool "hot share near 82%" true (abs_float (hot_share -. 0.82) < 0.03)

let test_hotspot_validation () =
  let raises f =
    match f () with
    | (_ : Ycsb.Keygen.t) -> false
    | exception Invalid_argument _ -> true
  in
  check Alcotest.bool "op_frac > 1 rejected" true
    (raises (fun () -> Ycsb.Keygen.hotspot ~op_frac:1.5 ~n:10 ()));
  check Alcotest.bool "key_frac = 0 rejected" true
    (raises (fun () -> Ycsb.Keygen.hotspot ~key_frac:0.0 ~n:10 ()))

let test_hotspot_grows () =
  let g = Ycsb.Keygen.hotspot ~op_frac:0.9 ~key_frac:0.1 ~n:100 () in
  let r = rng () in
  Ycsb.Keygen.set_n g 400;
  let max_seen = ref 0 in
  for _ = 1 to 2000 do
    let v = Ycsb.Keygen.next g r in
    if v < 0 || v >= 400 then Alcotest.fail "out of grown range";
    if v > !max_seen then max_seen := v
  done;
  (* The hot set grew with n: cold draws reach past the old n. *)
  check Alcotest.bool "draws reach the grown space" true (!max_seen >= 100)

(* Two zipfian generators over the same (theta, n) draw identical
   streams from identical RNGs — and construction hits the process-wide
   zeta memo, so building many generators over a large space is cheap
   (the zeta sum is extended incrementally, never recomputed). *)
let test_zipfian_zeta_memo_consistent () =
  let n = 200_000 in
  let g1 = Ycsb.Keygen.zipfian ~n () in
  let g2 = Ycsb.Keygen.zipfian ~n () in
  let r1 = Sim.Rng.create 77 and r2 = Sim.Rng.create 77 in
  for _ = 1 to 1000 do
    check Alcotest.int "same stream" (Ycsb.Keygen.next g1 r1) (Ycsb.Keygen.next g2 r2)
  done;
  (* Growing then re-growing must keep agreeing: set_n recomputes the
     cached constants through the same memo. *)
  Ycsb.Keygen.set_n g1 (n + 1000);
  Ycsb.Keygen.set_n g2 (n + 1000);
  for _ = 1 to 1000 do
    check Alcotest.int "same stream after set_n" (Ycsb.Keygen.next g1 r1)
      (Ycsb.Keygen.next g2 r2)
  done

let test_latest_skews_recent () =
  let g = Ycsb.Keygen.latest ~n:1000 in
  let r = rng () in
  let recent = ref 0 and total = 5000 in
  for _ = 1 to total do
    if Ycsb.Keygen.next g r >= 900 then incr recent
  done;
  check Alcotest.bool "recent tenth gets most traffic" true
    (float_of_int !recent /. float_of_int total > 0.5)

let test_sequence () =
  let g = Ycsb.Keygen.sequence ~start:5 in
  let r = rng () in
  check Alcotest.int "first" 5 (Ycsb.Keygen.next g r);
  check Alcotest.int "second" 6 (Ycsb.Keygen.next g r);
  check Alcotest.int "third" 7 (Ycsb.Keygen.next g r)

(* ------------------------------------------------------------------ *)
(* Workload                                                             *)
(* ------------------------------------------------------------------ *)

let test_mix_proportions () =
  let w =
    Ycsb.Workload.create ~record_count:1000
      ~mix:{ Ycsb.Workload.read = 0.7; update = 0.3; insert = 0.0; scan = 0.0 }
      ()
  in
  let r = rng () in
  let reads = ref 0 and updates = ref 0 and others = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.Workload.next_op w r with
    | Ycsb.Workload.Read _ -> incr reads
    | Ycsb.Workload.Update _ -> incr updates
    | _ -> incr others
  done;
  check Alcotest.int "no other ops" 0 !others;
  let frac = float_of_int !reads /. 10_000.0 in
  check Alcotest.bool "read fraction ~0.7" true (abs_float (frac -. 0.7) < 0.03)

let test_inserts_fresh_keys () =
  let w = Ycsb.Workload.create ~record_count:100 ~mix:Ycsb.Workload.insert_only () in
  let r = rng () in
  let seen = Hashtbl.create 64 in
  for i = 0 to 99 do
    Hashtbl.add seen (Ycsb.Workload.key_of w i) ()
  done;
  for _ = 1 to 200 do
    match Ycsb.Workload.next_op w r with
    | Ycsb.Workload.Insert (k, v) ->
        if Hashtbl.mem seen k then Alcotest.fail "insert reused a key";
        Hashtbl.add seen k ();
        check Alcotest.int "value size" 8 (String.length v)
    | _ -> Alcotest.fail "expected insert"
  done;
  check Alcotest.int "record count grew" 300 (Ycsb.Workload.record_count w)

let test_scan_ops () =
  let w =
    Ycsb.Workload.create ~scan_length:42 ~record_count:100 ~mix:Ycsb.Workload.scan_only ()
  in
  let r = rng () in
  match Ycsb.Workload.next_op w r with
  | Ycsb.Workload.Scan (_, n) -> check Alcotest.int "scan length" 42 n
  | _ -> Alcotest.fail "expected scan"

let test_load_ops () =
  let w = Ycsb.Workload.create ~record_count:10 ~mix:Ycsb.Workload.read_only () in
  let ops = Ycsb.Workload.load_ops w ~n:10 ~rng:(rng ()) |> List.of_seq in
  check Alcotest.int "count" 10 (List.length ops);
  let keys =
    List.map
      (function Ycsb.Workload.Insert (k, _) -> k | _ -> Alcotest.fail "expected insert")
      ops
  in
  check Alcotest.int "distinct" 10 (List.length (List.sort_uniq compare keys))

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let test_driver_closed_loop () =
  Sim.run (fun () ->
      let workload_of _ = Ycsb.Workload.create ~record_count:100 ~mix:Ycsb.Workload.read_only () in
      (* Each op takes exactly 1 ms => each client completes ~1000 ops in
         1 s of measurement. *)
      let exec ~client:_ _op = Sim.delay 0.001 in
      let r = Ycsb.Driver.run ~clients:4 ~duration:1.0 ~workload_of ~exec () in
      check Alcotest.bool "op count" true (abs (r.Ycsb.Driver.ops - 4000) <= 4);
      check Alcotest.bool "throughput ~4000" true (abs_float (r.Ycsb.Driver.throughput -. 4000.0) < 50.0);
      check Alcotest.int "no failures" 0 r.Ycsb.Driver.failures;
      let h = Ycsb.Driver.overall_latency r in
      check Alcotest.bool "latency ~1ms" true
        (abs_float (Sim.Stats.Hist.mean h -. 0.001) < 1e-5))

let test_driver_warmup_excluded () =
  Sim.run (fun () ->
      let workload_of _ = Ycsb.Workload.create ~record_count:10 ~mix:Ycsb.Workload.read_only () in
      let exec ~client:_ _ = Sim.delay 0.01 in
      let r = Ycsb.Driver.run ~warmup:0.5 ~clients:1 ~duration:1.5 ~workload_of ~exec () in
      (* 1 s of measurement at 100 ops/s. *)
      check Alcotest.bool "measured ops" true (abs (r.Ycsb.Driver.ops - 100) <= 2;);
      check Alcotest.bool "series covers warmup too" true
        (Array.length r.Ycsb.Driver.series >= 1))

let test_driver_failures_counted () =
  Sim.run (fun () ->
      let workload_of _ = Ycsb.Workload.create ~record_count:10 ~mix:Ycsb.Workload.read_only () in
      let n = ref 0 in
      let exec ~client:_ _ =
        Sim.delay 0.01;
        incr n;
        if !n mod 2 = 0 then failwith "injected"
      in
      let r = Ycsb.Driver.run ~clients:1 ~duration:1.0 ~workload_of ~exec () in
      check Alcotest.bool "failures counted" true (r.Ycsb.Driver.failures > 0);
      check Alcotest.bool "successes counted" true (r.Ycsb.Driver.ops > 0))

let test_driver_load_phase () =
  Sim.run (fun () ->
      let workload = Ycsb.Workload.create ~record_count:100 ~mix:Ycsb.Workload.insert_only () in
      let seen = Hashtbl.create 128 in
      let exec ~client:_ = function
        | Ycsb.Workload.Insert (k, _) ->
            Sim.delay 0.0001;
            if Hashtbl.mem seen k then Alcotest.fail "duplicate load key";
            Hashtbl.add seen k ()
        | _ -> Alcotest.fail "load phase must insert"
      in
      let r = Ycsb.Driver.run_load ~clients:5 ~n:100 ~workload ~exec () in
      check Alcotest.int "all inserted" 100 r.Ycsb.Driver.ops;
      check Alcotest.int "distinct keys" 100 (Hashtbl.length seen))

let () =
  Alcotest.run "ycsb"
    [
      ( "keygen",
        [
          Alcotest.test_case "key format" `Quick test_key_format;
          Alcotest.test_case "hashed distinct" `Quick test_hashed_keys_distinct;
          Alcotest.test_case "uniform coverage" `Quick test_uniform_range_and_coverage;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
          Alcotest.test_case "zipfian grows" `Quick test_zipfian_grows;
          Alcotest.test_case "hotspot concentration" `Quick test_hotspot_concentration;
          Alcotest.test_case "hotspot validation" `Quick test_hotspot_validation;
          Alcotest.test_case "hotspot grows" `Quick test_hotspot_grows;
          Alcotest.test_case "zipfian zeta memo" `Quick test_zipfian_zeta_memo_consistent;
          Alcotest.test_case "latest skew" `Quick test_latest_skews_recent;
          Alcotest.test_case "sequence" `Quick test_sequence;
        ] );
      ( "workload",
        [
          Alcotest.test_case "mix proportions" `Quick test_mix_proportions;
          Alcotest.test_case "inserts fresh keys" `Quick test_inserts_fresh_keys;
          Alcotest.test_case "scan ops" `Quick test_scan_ops;
          Alcotest.test_case "load ops" `Quick test_load_ops;
        ] );
      ( "driver",
        [
          Alcotest.test_case "closed loop" `Quick test_driver_closed_loop;
          Alcotest.test_case "warmup excluded" `Quick test_driver_warmup_excluded;
          Alcotest.test_case "failures counted" `Quick test_driver_failures_counted;
          Alcotest.test_case "load phase" `Quick test_driver_load_phase;
        ] );
    ]
