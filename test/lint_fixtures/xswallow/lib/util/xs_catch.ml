(* Cross-module fixture, swallowing caller. lib/util/ is outside the
   protocol scope, so the per-expression crashed-swallow rule stays
   quiet — only the interprocedural rule knows Xs_raise.poke crashes. *)

let safe () =
  try Xs_raise.poke () with _ -> 0 (* expect: crash-swallow-transitive *)
