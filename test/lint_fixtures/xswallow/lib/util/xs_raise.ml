(* Cross-module fixture, leaf module: raises a crash-class exception
   that a sibling module swallows behind a wildcard. *)

exception Crashed

let poke () = raise Crashed
