(* Clean counterparts: named exceptions, cleanup-and-reraise, and an
   exhaustive commit match produce no findings. *)

let retry_read store addr =
  try Store.read store addr with
  | Memnode.Crashed -> None
  | Txn.Aborted _ -> None

let cleanup_and_reraise mn f =
  try f mn
  with e ->
    Memnode.end_serving mn;
    raise e

let commit_exhaustive txn =
  match Txn.commit txn with
  | Txn.Committed -> true
  | Txn.Validation_failed | Txn.Retry_exhausted | Txn.Unavailable _ -> false
