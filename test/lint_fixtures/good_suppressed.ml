(* Suppression coverage: [lint: allow] covers its own lines plus the
   next, [lint: allow-file] covers the whole file. Each suppressed
   finding is asserted with [expect-suppressed:]. *)
(* lint: allow-file stringly-metrics *)

let any_live tbl =
  (* Order-independent boolean OR-fold. *)
  (* lint: allow nondet-iteration *)
  Hashtbl.fold (fun _ live acc -> acc || live) tbl false (* expect-suppressed: nondet-iteration *)

let host_stamp () = Unix.gettimeofday () (* lint: allow wallclock-rng *) (* expect-suppressed: wallclock-rng *)

let tally m = Metrics.add m "messages" 1 (* expect-suppressed: stringly-metrics *)
