(* Deliberately-bad fixture for protocol-order: a yes-vote's locks
   released before any decision record, and a vote logged only after
   the reply already went out. *)

let release_before_decision log locks owner ranges =
  Redo_log.append log owner ranges;
  Lock_table.release locks owner (* expect: protocol-order *)

let vote_after_reply log net owner ranges bytes =
  Net.transfer net ~bytes;
  Net.transfer net ~bytes;
  Redo_log.append log owner ranges (* expect: protocol-order *)
