(* Clean: each partial call carries its invariant, and [arr.(i)] index
   sugar is exempt (its desugared Array.get ident is ghost). *)

let first_node nodes =
  (* Invariant: callers pass the participant set, never empty. *)
  List.hd nodes

let peek arr i = arr.(i)
