(* Deliberately-bad fixture for crashed-swallow. Each finding must
   anchor exactly where its [expect:] comment sits. Fixtures only need
   to parse, not typecheck. *)

let retry_read store addr =
  try Store.read store addr
  with _ -> None (* expect: crashed-swallow *)

let cleanup_without_reraise mn f =
  try f mn
  with e -> Memnode.end_serving mn; ignore e; None (* expect: crashed-swallow *)

let read_or_zero store addr =
  match Store.read store addr with
  | Some v -> v
  | None -> 0
  | exception _ -> 0 (* expect: crashed-swallow *)

let fire_and_forget txn =
  match Txn.commit txn with
  | _ -> () (* expect: crashed-swallow *)
