(* Clean counterpart: waits happen before the ranges are acquired or
   after they are released. *)

let wait_then_hold locks owner ranges iv =
  let v = Sim.Ivar.read iv in
  if Lock_table.try_acquire locks ~owner ranges then Lock_table.release locks owner;
  v

let hold_then_wait locks owner ranges iv =
  let held = Lock_table.try_acquire locks ~owner ranges in
  if held then Lock_table.release locks owner;
  Sim.Ivar.read iv
