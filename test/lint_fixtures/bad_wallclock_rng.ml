(* Deliberately-bad fixture for wallclock-rng: ambient clock and the
   global random generator. *)

let stamp () = Unix.gettimeofday () (* expect: wallclock-rng *)

let coarse_stamp () = Unix.time () (* expect: wallclock-rng *)

let jitter () = Random.float 0.01 (* expect: wallclock-rng *)

let pick n = Random.int n (* expect: wallclock-rng *)
