(* Deliberately-bad fixture for blocking-under-lock: the fiber parks
   on a scheduler wait while Lock_table ranges are held — directly,
   and through a helper. *)

let wait_for iv = Sim.Ivar.read iv

let hold_and_wait locks owner ranges iv =
  if Lock_table.try_acquire locks ~owner ranges then begin
    let v = Sim.Ivar.read iv in (* expect: blocking-under-lock *)
    Lock_table.release locks owner;
    v
  end
  else wait_for iv

let hold_and_wait_deep locks owner ranges iv =
  if Lock_table.try_acquire locks ~owner ranges then
    wait_for iv (* expect: blocking-under-lock *)
  else 0
