(* Clean counterpart: the helper's fold is vouched order-independent
   by its allow directive, so no nondet fact enters its summary and
   callers stay clean through the chain. *)

let sorted_keys tbl =
  (* Order-independent: the collected keys are sorted before use. *)
  (* lint: allow nondet-iteration *)
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* expect-suppressed: nondet-iteration *)
  |> List.sort String.compare

let report tbl = List.iter print_string (sorted_keys tbl)

let deeper tbl = report tbl
