(* Clean: simulated time and seeded streams; Random.State with an
   explicit state is fine — the ban is on the implicit global. *)

let stamp () = Sim.now ()

let jitter rng = Sim.Rng.float rng 0.01

let pick st n = Random.State.int st n
