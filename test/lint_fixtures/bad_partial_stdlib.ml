(* Deliberately-bad fixture for partial-stdlib: no invariant comment
   near any of the calls below. *)



let first_node nodes = List.hd nodes (* expect: partial-stdlib *)

let third nodes = List.nth nodes 2 (* expect: partial-stdlib *)

let force v = Option.get v (* expect: partial-stdlib *)

let slot arr = Array.get arr 0 (* expect: partial-stdlib *)
