(* Clean counterpart: naming the crash exception is deliberate
   handling, and cleanup-and-reraise keeps propagation intact — the
   may-raise fact stops at the named handler. *)

exception Crashed

let poke_store () = raise Crashed

let read_with_default () =
  try poke_store () with Crashed -> 0

let with_cleanup () =
  try poke_store ()
  with e ->
    print_string "cleanup";
    raise e
