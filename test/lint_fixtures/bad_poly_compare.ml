(* Deliberately-bad fixture for poly-compare: structural comparison of
   protocol records named like protocol records. *)

let same_txn txn other_txn = txn = other_txn (* expect: poly-compare *)

let differs a b = a.memnode <> b.memnode (* expect: poly-compare *)

let order s1 s2 = compare s1.store s2.store (* expect: poly-compare *)
