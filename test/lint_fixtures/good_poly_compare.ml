(* Clean: protocol records compared by stable identity; structural
   equality on plain values does not trip the heuristic. *)

let same_txn txn other_txn = Int64.equal (Txn.id txn) (Txn.id other_txn)

let same_value a b = a.value = b.value
