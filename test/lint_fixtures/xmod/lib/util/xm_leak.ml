(* Cross-module fixture, leaf module. This file sits outside the
   determinism scope, so the base nondet-iteration rule stays quiet
   here — but the hash-order fact still enters dump's summary. *)

let dump tbl =
  Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
