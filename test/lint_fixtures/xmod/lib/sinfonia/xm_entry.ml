(* Cross-module fixture, determinism-scoped caller. The nondet source
   lives in lib/util/ where no per-file rule applies; only the
   interprocedural rule can see it from here — once through an open,
   once through a module alias. *)

open Xm_leak
module L = Xm_leak

let report tbl =
  dump tbl (* expect: transitive-nondet *)

let audit tbl =
  L.dump tbl (* expect: transitive-nondet *)
