(* Deliberately-bad fixture for nondet-iteration: hash-order traversal
   reaching output. *)

let dump tbl =
  Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl (* expect: nondet-iteration *)

let keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* expect: nondet-iteration *)

let stream tbl =
  Seq.iter print_string (Hashtbl.to_seq_keys tbl) (* expect: nondet-iteration *)

let pairs tbl =
  List.of_seq (Hashtbl.to_seq tbl) (* expect: nondet-iteration *)

let values tbl =
  List.of_seq (Hashtbl.to_seq_values tbl) (* expect: nondet-iteration *)
