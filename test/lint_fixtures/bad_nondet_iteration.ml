(* Deliberately-bad fixture for nondet-iteration: hash-order traversal
   reaching output. *)

let dump tbl =
  Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl (* expect: nondet-iteration *)

let keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* expect: nondet-iteration *)
