(* Deliberately-bad fixture for stringly-metrics: string-keyed counter
   updates outside the Obs registry. *)

let count m = Metrics.incr m "aborts" (* expect: stringly-metrics *)

let tally m = Metrics.add m "messages" 10 (* expect: stringly-metrics *)

let record m = Metrics.observe m "latency" 0.5 (* expect: stringly-metrics *)
