(* Clean counterpart: the decision record lands before the release,
   and the vote is durable before the reply transfer. *)

let decided_release log locks owner ranges =
  Redo_log.append log owner ranges;
  Redo_log.decide_commit log owner;
  Lock_table.release locks owner

let vote_then_reply log net owner ranges bytes =
  Net.transfer net ~bytes;
  Redo_log.append log owner ranges;
  Net.transfer net ~bytes
