(* Deliberately-bad fixture for transitive-nondet: the hash-order
   traversal hides one (and two) calls away, where the per-expression
   rule cannot see it from the caller. *)

let dump_order tbl =
  Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl (* expect: nondet-iteration *)

let report tbl =
  dump_order tbl (* expect: transitive-nondet *)

let deeper tbl =
  report tbl (* expect: transitive-nondet *)
