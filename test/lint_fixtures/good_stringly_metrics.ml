(* Clean: typed Obs handles, and Metrics calls whose name is threaded
   as a value rather than a literal. *)

let count stats = Obs.Counter.incr stats.Obs.commits

let tally m name = Metrics.add m name 10
