(* Deliberately-bad directives: each becomes an unsuppressable
   lint-directive finding at the directive's own line. *)

let noop () = () (* lint: alow crashed-swallow *) (* expect: lint-directive *)

let noop2 () = () (* lint: allow no-such-rule *) (* expect: lint-directive *)

let noop3 () = () (* lint: allow *) (* expect: lint-directive *)
