(* Clean: key-sorted views from Sim.Det replace raw hash-order
   traversal. *)

let dump tbl =
  Sim.Det.iter_sorted tbl ~cmp:String.compare (fun k v -> Printf.printf "%s=%d\n" k v)

let keys tbl = List.map fst (Sim.Det.sorted_bindings tbl ~cmp:String.compare)
