(* Deliberately-bad fixture for crash-swallow-transitive: the handlers
   look innocent; the crash raise lives one (and two) calls down. *)

exception Crashed

let poke_store () = raise Crashed

let wrapper () = poke_store ()

let read_with_default () =
  try poke_store () with _ -> 0 (* expect: crashed-swallow *) (* expect: crash-swallow-transitive *)

let swallow_deep () =
  match wrapper () with
  | v -> v
  | exception _ -> 0 (* expect: crashed-swallow *) (* expect: crash-swallow-transitive *)
