(* Tests for the dynamic transaction layer: read/write sets, OCC
   validation, dirty reads, replicated objects, and the proxy cache. *)

let check = Alcotest.check

open Sinfonia
open Dyntxn

let slot node off = Objref.make ~addr:(Address.make ~node ~off) ~len:64

(* Object slots live above the replicated-object region used in the
   replicated tests. *)
let base = 4096

let with_cluster ?(n = 3) f = Sim.run (fun () -> f (Cluster.create ~n ()))

let commit_ok t =
  match Txn.commit t with
  | Txn.Committed -> ()
  | Txn.Validation_failed -> Alcotest.fail "unexpected validation failure"
  | Txn.Retry_exhausted -> Alcotest.fail "unexpected retry exhaustion"
  | Txn.Unavailable _ -> Alcotest.fail "unexpected unavailability"

let expect_validation_failure t =
  match Txn.commit t with
  | Txn.Validation_failed -> ()
  | Txn.Committed -> Alcotest.fail "expected validation failure, committed"
  | Txn.Retry_exhausted -> Alcotest.fail "expected validation failure, got retry exhaustion"
  | Txn.Unavailable _ -> Alcotest.fail "expected validation failure, got unavailability"

(* ------------------------------------------------------------------ *)
(* Objref                                                               *)
(* ------------------------------------------------------------------ *)

let test_objref_slot_roundtrip () =
  let s = Objref.slot_of ~seq:42L ~payload:"data" in
  check Alcotest.int64 "seq" 42L (Objref.seq_of_slot s);
  check Alcotest.string "payload" "data" (Objref.payload_of_slot s);
  check Alcotest.int "slot length" 16 (String.length s)

let test_objref_capacity () =
  let r = slot 0 base in
  check Alcotest.int "payload capacity" 52 (Objref.payload_capacity r);
  match Objref.make ~addr:(Address.make ~node:0 ~off:0) ~len:12 with
  | (_ : Objref.t) -> Alcotest.fail "slot without payload room accepted"
  | exception Invalid_argument _ -> ()

let test_objref_zero_slot_seq () =
  (* A never-written slot reads as zeros => sequence number 0. *)
  check Alcotest.int64 "zero slot" 0L (Objref.seq_of_slot (String.make 64 '\000'))

(* ------------------------------------------------------------------ *)
(* Objcache                                                             *)
(* ------------------------------------------------------------------ *)

let entry seq payload = { Objcache.seq; payload }

let test_cache_basic () =
  let c = Objcache.create ~capacity:10 () in
  let r = slot 0 base in
  check Alcotest.bool "miss" true (Objcache.find c r = None);
  Objcache.insert c r (entry 1L "v1");
  (match Objcache.find c r with
  | Some { Objcache.seq = 1L; payload = "v1" } -> ()
  | _ -> Alcotest.fail "hit expected");
  Objcache.insert c r (entry 2L "v2");
  (match Objcache.find c r with
  | Some { Objcache.seq = 2L; payload = "v2" } -> ()
  | _ -> Alcotest.fail "overwrite expected");
  check Alcotest.int "size" 1 (Objcache.size c);
  Objcache.invalidate c r;
  check Alcotest.bool "invalidated" true (Objcache.find c r = None)

let test_cache_lru_eviction () =
  let c = Objcache.create ~capacity:3 () in
  let refs = Array.init 4 (fun i -> slot 0 (base + (i * 64))) in
  for i = 0 to 2 do
    Objcache.insert c refs.(i) (entry (Int64.of_int i) "x")
  done;
  (* Touch refs.(0) so refs.(1) becomes LRU; inserting refs.(3) evicts it. *)
  ignore (Objcache.find c refs.(0));
  Objcache.insert c refs.(3) (entry 3L "x");
  check Alcotest.int "capacity respected" 3 (Objcache.size c);
  check Alcotest.bool "lru evicted" true (Objcache.find c refs.(1) = None);
  check Alcotest.bool "recently used kept" true (Objcache.find c refs.(0) <> None);
  check Alcotest.bool "newest kept" true (Objcache.find c refs.(3) <> None)

let test_cache_stats () =
  let c = Objcache.create () in
  let r = slot 0 base in
  ignore (Objcache.find c r);
  Objcache.insert c r (entry 1L "v");
  ignore (Objcache.find c r);
  check Alcotest.int "hits" 1 (Objcache.hits c);
  check Alcotest.int "misses" 1 (Objcache.misses c)

let test_cache_clear () =
  let c = Objcache.create () in
  Objcache.insert c (slot 0 base) (entry 1L "v");
  Objcache.clear c;
  check Alcotest.int "cleared" 0 (Objcache.size c);
  check Alcotest.int "bulk eviction counted" 1 (Objcache.bulk_evictions c)

let test_cache_epoch_staleness () =
  let c = Objcache.create () in
  let r0 = slot 0 base and r1 = slot 1 base in
  Objcache.insert c r0 (entry 1L "space0");
  Objcache.insert c r1 (entry 2L "space1");
  (* A crash of space 0 turns only space-0 entries stale. *)
  Objcache.observe_epoch c ~space:0 ~epoch:1;
  (match Objcache.find_status c r0 with
  | Objcache.Stale { Objcache.seq = 1L; payload = "space0" } -> ()
  | _ -> Alcotest.fail "space-0 entry should be stale after its epoch bump");
  (match Objcache.find_status c r1 with
  | Objcache.Fresh { Objcache.payload = "space1"; _ } -> ()
  | _ -> Alcotest.fail "space-1 entry must stay fresh");
  check Alcotest.int "stale hit counted" 1 (Objcache.stale_hits c);
  (* find treats stale as a miss but keeps the entry for revalidation. *)
  check Alcotest.bool "find skips stale" true (Objcache.find c r0 = None);
  check Alcotest.int "entry retained" 2 (Objcache.size c);
  (* Epoch observations are monotonic: an older epoch changes nothing. *)
  Objcache.observe_epoch c ~space:0 ~epoch:0;
  (match Objcache.find_status c r0 with
  | Objcache.Stale _ -> ()
  | _ -> Alcotest.fail "stale regression: old epoch observation un-staled the entry");
  (* Revalidation accounting, then a re-insert is fresh at the new
     epoch. A same-seq re-fetch survives; a changed seq does not. *)
  let stale_entry = entry 1L "space0" in
  Objcache.note_revalidation c ~old:stale_entry ~seq:1L ~payload:"space0";
  Objcache.note_revalidation c ~old:stale_entry ~seq:9L ~payload:"different";
  check Alcotest.int "revalidations" 2 (Objcache.epoch_revalidations c);
  check Alcotest.int "survived" 1 (Objcache.epoch_survived c);
  check Alcotest.int "no stamp matches without a comparator" 0 (Objcache.stamp_revalidations c);
  Objcache.insert c r0 (entry 1L "space0");
  (match Objcache.find_status c r0 with
  | Objcache.Fresh _ -> ()
  | _ -> Alcotest.fail "re-inserted entry must carry the current epoch");
  check Alcotest.int "no bulk eviction anywhere" 0 (Objcache.bulk_evictions c)

let test_cache_stamp_revalidation () =
  (* With a content comparator installed, a stale entry whose payload
     matches the fresh bytes survives revalidation even though its
     sequence number changed (a promoted backup renumbers slots without
     changing node content). *)
  let c = Objcache.create ~same_content:String.equal () in
  let old = entry 1L "node-bytes" in
  Objcache.note_revalidation c ~old ~seq:7L ~payload:"node-bytes";
  check Alcotest.int "stamp match counted" 1 (Objcache.stamp_revalidations c);
  check Alcotest.int "stamp match survives" 1 (Objcache.epoch_survived c);
  Objcache.note_revalidation c ~old ~seq:8L ~payload:"other-bytes";
  check Alcotest.int "content mismatch not counted" 1 (Objcache.stamp_revalidations c);
  check Alcotest.int "content mismatch does not survive" 1 (Objcache.epoch_survived c);
  (* Same seq short-circuits: no stamp comparison is recorded. *)
  Objcache.note_revalidation c ~old ~seq:1L ~payload:"node-bytes";
  check Alcotest.int "same seq needs no stamp" 1 (Objcache.stamp_revalidations c);
  check Alcotest.int "same seq survives" 2 (Objcache.epoch_survived c);
  check Alcotest.int "all three counted" 3 (Objcache.epoch_revalidations c)

(* ------------------------------------------------------------------ *)
(* Transactions                                                         *)
(* ------------------------------------------------------------------ *)

let test_txn_write_then_read_back () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t1 = Txn.begin_ cluster in
      Txn.write t1 r "hello";
      check Alcotest.string "read own write" "hello" (Txn.read t1 r);
      commit_ok t1;
      let t2 = Txn.begin_ cluster in
      check Alcotest.string "persisted" "hello" (Txn.read t2 r);
      commit_ok t2)

let test_txn_read_only_free_commit () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "v";
      commit_ok t0;
      let before = Sim.Metrics.counter_value (Cluster.metrics cluster) "txn.free_commits" in
      let t = Txn.begin_ cluster in
      check Alcotest.string "value" "v" (Txn.read t r);
      check Alcotest.int "one fetch" 1 (Txn.fetches t);
      commit_ok t;
      let after = Sim.Metrics.counter_value (Cluster.metrics cluster) "txn.free_commits" in
      check Alcotest.int "free commit" (before + 1) after)

let test_txn_occ_conflict () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "initial";
      commit_ok t0;
      (* t1 reads, then t2 updates, then t1 tries to write based on its
         stale read: validation must fail. *)
      let t1 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t1 r in
      let t2 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t2 r in
      Txn.write t2 r "t2 wins";
      commit_ok t2;
      Txn.write t1 r "t1 late";
      expect_validation_failure t1;
      let t3 = Txn.begin_ cluster in
      check Alcotest.string "t2's write survived" "t2 wins" (Txn.read t3 r))

let test_txn_dirty_read_not_validated () =
  with_cluster (fun cluster ->
      let a = slot 0 base and b = slot 0 (base + 64) in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 a "a0";
      Txn.write t0 b "b0";
      commit_ok t0;
      (* t1 dirty-reads [a]; a concurrent update to [a] must NOT abort
         t1's commit, because dirty reads are not validated. *)
      let t1 = Txn.begin_ cluster in
      check Alcotest.string "dirty value" "a0" (Txn.dirty_read t1 a);
      let t2 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t2 a in
      Txn.write t2 a "a1";
      commit_ok t2;
      Txn.write t1 b "b1";
      commit_ok t1)

let test_txn_dirty_read_promoted_on_write () =
  with_cluster (fun cluster ->
      let a = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 a "a0";
      commit_ok t0;
      (* t1 dirty-reads [a], then [a] changes, then t1 writes [a]: the
         dirty read joins the read set, so validation must fail. *)
      let t1 = Txn.begin_ cluster in
      check Alcotest.string "dirty value" "a0" (Txn.dirty_read t1 a);
      let t2 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t2 a in
      Txn.write t2 a "a1";
      commit_ok t2;
      Txn.write t1 a "t1 stale write";
      expect_validation_failure t1;
      let t3 = Txn.begin_ cluster in
      check Alcotest.string "winner kept" "a1" (Txn.read t3 a))

let test_txn_piggyback_aborts_stale_read_set () =
  with_cluster (fun cluster ->
      let a = slot 0 base and b = slot 0 (base + 64) in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 a "a0";
      Txn.write t0 b "b0";
      commit_ok t0;
      let t1 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t1 a in
      (* Concurrent update to [a]. *)
      let t2 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t2 a in
      Txn.write t2 a "a1";
      commit_ok t2;
      (* t1's next transactional read on the same memnode piggy-backs
         validation of [a] and must abort. *)
      match Txn.read t1 b with
      | (_ : string) -> Alcotest.fail "expected Aborted"
      | exception Txn.Aborted _ -> check Alcotest.bool "aborted" true (Txn.is_aborted t1))

let test_txn_multi_node_commit () =
  with_cluster (fun cluster ->
      let a = slot 0 base and b = slot 2 base in
      let t = Txn.begin_ cluster in
      Txn.write t a "node0";
      Txn.write t b "node2";
      commit_ok t;
      let t2 = Txn.begin_ cluster in
      check Alcotest.string "node0 data" "node0" (Txn.read t2 a);
      check Alcotest.string "node2 data" "node2" (Txn.read t2 b);
      commit_ok t2)

let test_txn_multi_node_read_validated_commit () =
  (* A read-only transaction spanning two memnodes cannot rely on
     piggy-backed validation and must issue a commit-time validation. *)
  with_cluster (fun cluster ->
      let a = slot 0 base and b = slot 2 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 a "A";
      Txn.write t0 b "B";
      commit_ok t0;
      let t1 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t1 a in
      let (_ : string) = Txn.read t1 b in
      (* Concurrent update of [a] after t1 read it. *)
      let t2 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t2 a in
      Txn.write t2 a "A'";
      commit_ok t2;
      (* Hmm: t1 is read-only; its reads were individually atomic but the
         pair is not a consistent snapshot anymore. Commit must detect it. *)
      expect_validation_failure t1)

let test_txn_abort_explicit () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t = Txn.begin_ cluster in
      Txn.write t r "doomed";
      (match Txn.abort t with
      | (_ : unit) -> Alcotest.fail "abort should raise"
      | exception Txn.Aborted _ -> ());
      (match Txn.commit t with
      | (_ : Txn.commit_result) -> Alcotest.fail "commit after abort should raise"
      | exception Txn.Aborted _ -> ());
      let t2 = Txn.begin_ cluster in
      check Alcotest.string "write discarded" "" (Txn.read t2 r))

let test_txn_payload_capacity_checked () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t = Txn.begin_ cluster in
      match Txn.write t r (String.make 100 'x') with
      | () -> Alcotest.fail "oversized payload accepted"
      | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Cache interaction                                                    *)
(* ------------------------------------------------------------------ *)

let test_txn_dirty_read_uses_cache () =
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "cached-value";
      commit_ok t0;
      (* First dirty read fetches and fills the cache... *)
      let t1 = Txn.begin_ cluster ~cache in
      check Alcotest.string "fetch" "cached-value" (Txn.dirty_read t1 r);
      check Alcotest.int "one fetch" 1 (Txn.fetches t1);
      commit_ok t1;
      (* ...second transaction is served locally. *)
      let t2 = Txn.begin_ cluster ~cache in
      check Alcotest.string "cache hit" "cached-value" (Txn.dirty_read t2 r);
      check Alcotest.int "no fetch" 0 (Txn.fetches t2);
      commit_ok t2)

let test_txn_stale_cache_detected_on_write () =
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "v1";
      commit_ok t0;
      (* Warm the cache. *)
      let t1 = Txn.begin_ cluster ~cache in
      let (_ : string) = Txn.dirty_read t1 r in
      commit_ok t1;
      (* Remote update makes the cache stale (incoherent by design). *)
      let t2 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t2 r in
      Txn.write t2 r "v2";
      commit_ok t2;
      (* A cached dirty read + write must fail validation, and the stale
         entry must be evicted so the retry succeeds. *)
      let t3 = Txn.begin_ cluster ~cache in
      check Alcotest.string "stale cache served" "v1" (Txn.dirty_read t3 r);
      Txn.write t3 r "v3";
      expect_validation_failure t3;
      let t4 = Txn.begin_ cluster ~cache in
      check Alcotest.string "refetched fresh" "v2" (Txn.dirty_read t4 r);
      Txn.write t4 r "v3";
      commit_ok t4)

let test_txn_evict_dirty () =
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "v";
      commit_ok t0;
      let t1 = Txn.begin_ cluster ~cache in
      let (_ : string) = Txn.dirty_read t1 r in
      Txn.evict_dirty t1;
      check Alcotest.bool "evicted" true (Objcache.find cache r = None))

let test_txn_commit_refreshes_cached_objects () =
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "old";
      commit_ok t0;
      let t1 = Txn.begin_ cluster ~cache in
      let (_ : string) = Txn.dirty_read t1 r in
      Txn.write t1 r "new";
      commit_ok t1;
      (* The proxy's own cache reflects its committed write. *)
      match Objcache.find cache r with
      | Some { Objcache.payload = "new"; _ } -> ()
      | Some { Objcache.payload; _ } -> Alcotest.failf "cache has %S" payload
      | None -> Alcotest.fail "cache entry missing")

let test_txn_read_many_single_round_trip () =
  with_cluster (fun cluster ->
      (* Three slots on three memnodes: one read_many, one fetch. *)
      let refs = [ slot 0 base; slot 1 base; slot 2 base ] in
      let t0 = Txn.begin_ cluster in
      List.iteri (fun i r -> Txn.write t0 r (Printf.sprintf "m%d" i)) refs;
      commit_ok t0;
      let t1 = Txn.begin_ cluster in
      (match Txn.read_many_with_seq t1 refs with
      | [ (_, "m0"); (_, "m1"); (_, "m2") ] -> ()
      | _ -> Alcotest.fail "read_many: wrong values or order");
      check Alcotest.int "one coalesced fetch" 1 (Txn.fetches t1);
      (* Re-reading (plus a duplicate) is served from the read set. *)
      (match Txn.read_many_with_seq t1 (refs @ [ List.hd refs ]) with
      | [ (_, "m0"); (_, "m1"); (_, "m2"); (_, "m0") ] -> ()
      | _ -> Alcotest.fail "read_many: duplicate handling");
      check Alcotest.int "no extra fetch" 1 (Txn.fetches t1);
      commit_ok t1;
      (* The dirty variant coalesces the same way. *)
      let t2 = Txn.begin_ cluster in
      (match Txn.dirty_read_many_with_seq t2 refs with
      | [ (_, "m0"); (_, "m1"); (_, "m2") ] -> ()
      | _ -> Alcotest.fail "dirty_read_many: wrong values or order");
      check Alcotest.int "one dirty coalesced fetch" 1 (Txn.fetches t2);
      commit_ok t2)

let test_txn_read_many_validates_read_set () =
  with_cluster (fun cluster ->
      (* Same memnode: the compare for r0 can piggy-back on r1's fetch. *)
      let r0 = slot 0 base and r1 = slot 0 (base + 64) in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r0 "a";
      Txn.write t0 r1 "b";
      commit_ok t0;
      (* t1 reads r0 (validated), a rival then rewrites it; the next
         read_many must piggy-back the compare and abort. *)
      let t1 = Txn.begin_ cluster in
      check Alcotest.string "r0" "a" (Txn.read t1 r0);
      let rival = Txn.begin_ cluster in
      check Alcotest.string "rival reads" "a" (Txn.read rival r0);
      Txn.write rival r0 "a2";
      commit_ok rival;
      (match Txn.read_many_with_seq t1 [ r1 ] with
      | (_ : (int64 * string) list) -> Alcotest.fail "stale read set not caught"
      | exception Txn.Aborted _ -> ()))

let test_txn_negative_entries_not_cached () =
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 0 base in
      (* Dirty-reading an unallocated (empty-payload) slot must not
         create a cache entry: negative entries would mask later
         allocations of the slot. *)
      let t0 = Txn.begin_ cluster ~cache in
      check Alcotest.string "empty slot" "" (Txn.dirty_read t0 r);
      commit_ok t0;
      check Alcotest.int "no negative entry" 0 (Objcache.size cache);
      (* And a stale positive entry is dropped when a fetch comes back
         empty. *)
      Objcache.insert cache r { Objcache.seq = 9L; payload = "ghost" };
      let t1 = Txn.begin_ cluster ~cache in
      check Alcotest.string "ghost served dirty" "ghost" (Txn.dirty_read t1 r);
      Txn.evict_dirty t1;
      let t2 = Txn.begin_ cluster ~cache in
      check Alcotest.string "refetched empty" "" (Txn.dirty_read t2 r);
      commit_ok t2;
      check Alcotest.bool "ghost not re-cached" true (Objcache.find cache r = None))

let test_txn_evict_dirty_drops_negative_read () =
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 0 base in
      (* The cache holds a positive entry; a validated read then shows
         the slot is actually empty (deleted). evict_dirty must drop the
         contradicted cache entry along with the dirty set. *)
      Objcache.insert cache r { Objcache.seq = 3L; payload = "ghost" };
      let t = Txn.begin_ cluster ~cache in
      check Alcotest.string "slot is empty" "" (Txn.read t r);
      Txn.evict_dirty t;
      check Alcotest.bool "negative read evicts entry" true (Objcache.find cache r = None))

let test_txn_cache_epoch_revalidation_after_crash () =
  with_cluster ~n:2 (fun cluster ->
      let cache = Objcache.create () in
      let r = slot 1 base and r2 = slot 1 (base + 64) in
      let t0 = Txn.begin_ cluster ~cache in
      Txn.write t0 r "epoch-v";
      Txn.write t0 r2 "other";
      commit_ok t0;
      (* Warm the cache for r. *)
      let t1 = Txn.begin_ cluster ~cache in
      check Alcotest.string "warm" "epoch-v" (Txn.dirty_read t1 r);
      commit_ok t1;
      (* Crash memnode 1 and recover it: its space's epoch is bumped. *)
      Cluster.crash cluster 1;
      (match Cluster.try_recover cluster 1 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "recovery failed");
      (* The proxy has not heard about the crash yet: the cached entry
         still serves (incoherent by design, same as any stale entry). *)
      check Alcotest.int "no revalidation yet" 0 (Objcache.epoch_revalidations cache);
      (* Any minitransaction touching the space teaches the cache the
         new epoch via the reply... *)
      let t2 = Txn.begin_ cluster ~cache in
      check Alcotest.string "unrelated fetch" "other" (Txn.dirty_read t2 ~use_cache:false r2);
      commit_ok t2;
      (* ...so the next dirty read of r revalidates the stale-epoch
         entry with a single fetch instead of trusting or flushing it. *)
      let t3 = Txn.begin_ cluster ~cache in
      check Alcotest.string "revalidated value" "epoch-v" (Txn.dirty_read t3 r);
      check Alcotest.int "revalidation fetch" 1 (Txn.fetches t3);
      commit_ok t3;
      check Alcotest.int "one revalidation" 1 (Objcache.epoch_revalidations cache);
      check Alcotest.int "entry survived" 1 (Objcache.epoch_survived cache);
      check Alcotest.int "no bulk eviction" 0 (Objcache.bulk_evictions cache);
      (* Fully revalidated: a further dirty read is a plain cache hit. *)
      let t4 = Txn.begin_ cluster ~cache in
      check Alcotest.string "fresh again" "epoch-v" (Txn.dirty_read t4 r);
      check Alcotest.int "served locally" 0 (Txn.fetches t4);
      commit_ok t4)

(* ------------------------------------------------------------------ *)
(* Replicated objects                                                   *)
(* ------------------------------------------------------------------ *)

let repl_off = 0

let repl_len = 24

let test_replicated_write_updates_all () =
  with_cluster (fun cluster ->
      let t = Txn.begin_ cluster in
      Txn.write_replicated t ~off:repl_off ~len:repl_len "tip=1";
      commit_ok t;
      (* Every memnode's heap holds the same slot bytes. *)
      let slot0 =
        Heap.read (Memnode.store_heap (Memnode.primary (Cluster.memnode cluster 0))) ~off:repl_off
          ~len:repl_len
      in
      for i = 1 to Cluster.n_memnodes cluster - 1 do
        let s =
          Heap.read
            (Memnode.store_heap (Memnode.primary (Cluster.memnode cluster i)))
            ~off:repl_off ~len:repl_len
        in
        check Alcotest.string (Printf.sprintf "replica %d" i) slot0 s
      done;
      (* Readable from any home. *)
      let t1 = Txn.begin_ cluster ~home:2 in
      check Alcotest.string "read via home 2" "tip=1"
        (Txn.read_replicated t1 ~off:repl_off ~len:repl_len);
      commit_ok t1)

let test_replicated_read_validates () =
  with_cluster (fun cluster ->
      let t0 = Txn.begin_ cluster in
      Txn.write_replicated t0 ~off:repl_off ~len:repl_len "tip=1";
      commit_ok t0;
      let r = slot 0 base in
      (* t1 reads the replicated object, then someone bumps it; t1's
         write must fail validation. *)
      let t1 = Txn.begin_ cluster in
      check Alcotest.string "tip" "tip=1" (Txn.read_replicated t1 ~off:repl_off ~len:repl_len);
      let t2 = Txn.begin_ cluster in
      Txn.write_replicated t2 ~off:repl_off ~len:repl_len "tip=2";
      commit_ok t2;
      Txn.write t1 r "based on old tip";
      expect_validation_failure t1)

let test_replicated_dirty_read () =
  with_cluster (fun cluster ->
      let t0 = Txn.begin_ cluster in
      Txn.write_replicated t0 ~off:repl_off ~len:repl_len "tip=7";
      commit_ok t0;
      let t1 = Txn.begin_ cluster in
      check Alcotest.string "dirty replicated" "tip=7"
        (Txn.dirty_read_replicated t1 ~off:repl_off ~len:repl_len);
      (* Not in the read set: a concurrent bump does not fail t1. *)
      let t2 = Txn.begin_ cluster in
      Txn.write_replicated t2 ~off:repl_off ~len:repl_len "tip=8";
      commit_ok t2;
      Txn.write t1 (slot 1 base) "independent";
      commit_ok t1)

let test_replicated_blocking_commit () =
  with_cluster (fun cluster ->
      let t = Txn.begin_ cluster in
      Txn.write_replicated t ~off:repl_off ~len:repl_len "tip=1";
      (match Txn.commit ~blocking:true t with
      | Txn.Committed -> ()
      | _ -> Alcotest.fail "blocking commit failed");
      let t1 = Txn.begin_ cluster ~home:1 in
      check Alcotest.string "visible" "tip=1"
        (Txn.read_replicated t1 ~off:repl_off ~len:repl_len))

let test_replicated_cached_then_validated () =
  (* A replicated read served from the proxy cache is still validated at
     commit: stale cache => validation failure => eviction => retry ok. *)
  with_cluster (fun cluster ->
      let cache = Objcache.create () in
      let t0 = Txn.begin_ cluster in
      Txn.write_replicated t0 ~off:repl_off ~len:repl_len "tip=1";
      commit_ok t0;
      (* Warm the proxy cache. *)
      let t1 = Txn.begin_ cluster ~cache in
      let (_ : string) = Txn.read_replicated t1 ~off:repl_off ~len:repl_len in
      commit_ok t1;
      (* Tip bumped elsewhere. *)
      let t2 = Txn.begin_ cluster in
      Txn.write_replicated t2 ~off:repl_off ~len:repl_len "tip=2";
      commit_ok t2;
      (* Cached (stale) tip + a write => validation failure. *)
      let t3 = Txn.begin_ cluster ~cache in
      check Alcotest.string "stale tip from cache" "tip=1"
        (Txn.read_replicated t3 ~off:repl_off ~len:repl_len);
      Txn.write t3 (slot 0 base) "x";
      expect_validation_failure t3;
      (* Retry refetches the fresh tip. *)
      let t4 = Txn.begin_ cluster ~cache in
      check Alcotest.string "fresh tip" "tip=2"
        (Txn.read_replicated t4 ~off:repl_off ~len:repl_len);
      Txn.write t4 (slot 0 base) "x";
      commit_ok t4)

(* ------------------------------------------------------------------ *)
(* Baseline-mode primitives                                             *)
(* ------------------------------------------------------------------ *)

let test_write_linked_echoes_seq () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let echo_off = 1024 in
      let t = Txn.begin_ cluster in
      Txn.write_linked t r "payload" ~repl_off:echo_off;
      commit_ok t;
      (* Every memnode's replicated slot carries the object's fresh
         sequence number. *)
      let obj_slot =
        Heap.read (Memnode.store_heap (Memnode.primary (Cluster.memnode cluster 0))) ~off:base
          ~len:64
      in
      let obj_seq = Dyntxn.Objref.seq_of_slot obj_slot in
      for node = 0 to Cluster.n_memnodes cluster - 1 do
        let echo_slot =
          Heap.read
            (Memnode.store_heap (Memnode.primary (Cluster.memnode cluster node)))
            ~off:echo_off ~len:16
        in
        check Alcotest.int64
          (Printf.sprintf "echo on node %d" node)
          obj_seq
          (Dyntxn.Objref.seq_of_slot echo_slot)
      done)

let test_validate_replicated_catches_stale () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let echo_off = 1024 in
      (* Publish version 1. *)
      let t0 = Txn.begin_ cluster in
      Txn.write_linked t0 r "v1" ~repl_off:echo_off;
      commit_ok t0;
      let seq1, _ = Txn.dirty_read_with_seq (Txn.begin_ cluster) r in
      (* A transaction validating against seq1 succeeds... *)
      let ta = Txn.begin_ cluster in
      Txn.validate_replicated ta ~off:echo_off ~seq:seq1;
      Txn.write ta (slot 1 base) "x";
      commit_ok ta;
      (* ...the object is republished (seq changes)... *)
      let t1 = Txn.begin_ cluster in
      let (_ : string) = Txn.read t1 r in
      Txn.write_linked t1 r "v2" ~repl_off:echo_off;
      commit_ok t1;
      (* ...and now the stale expectation fails validation. *)
      let tb = Txn.begin_ cluster in
      Txn.validate_replicated tb ~off:echo_off ~seq:seq1;
      Txn.write tb (slot 1 base) "y";
      expect_validation_failure tb)

let test_read_with_seq () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "v";
      commit_ok t0;
      let t1 = Txn.begin_ cluster in
      let seq, payload = Txn.read_with_seq t1 r in
      check Alcotest.string "payload" "v" payload;
      check Alcotest.bool "nonzero seq" true (Int64.compare seq 0L > 0);
      check Alcotest.bool "in_write_set false" false (Txn.in_write_set t1 r);
      Txn.write t1 r "w";
      check Alcotest.bool "in_write_set true" true (Txn.in_write_set t1 r))

(* ------------------------------------------------------------------ *)
(* Concurrency property: lost-update freedom                            *)
(* ------------------------------------------------------------------ *)

let test_txn_concurrent_increments () =
  with_cluster (fun cluster ->
      let r = slot 0 base in
      let t0 = Txn.begin_ cluster in
      Txn.write t0 r "0";
      commit_ok t0;
      let workers = 6 and per_worker = 8 in
      let finished = ref 0 in
      for _ = 1 to workers do
        Sim.spawn (fun () ->
            for _ = 1 to per_worker do
              let rec attempt () =
                let t = Txn.begin_ cluster in
                let v = int_of_string (Txn.read t r) in
                Txn.write t r (string_of_int (v + 1));
                match Txn.commit t with
                | Txn.Committed -> ()
                | Txn.Validation_failed -> attempt ()
                | Txn.Retry_exhausted -> Alcotest.fail "retry exhausted"
                | Txn.Unavailable _ -> Alcotest.fail "unexpected unavailability"
              in
              attempt ()
            done;
            incr finished)
      done;
      Sim.delay 300.0;
      check Alcotest.int "workers done" workers !finished;
      let t = Txn.begin_ cluster in
      check Alcotest.string "no lost updates"
        (string_of_int (workers * per_worker))
        (Txn.read t r))

let () =
  Alcotest.run "dyntxn"
    [
      ( "objref",
        [
          Alcotest.test_case "slot roundtrip" `Quick test_objref_slot_roundtrip;
          Alcotest.test_case "capacity" `Quick test_objref_capacity;
          Alcotest.test_case "zero slot seq" `Quick test_objref_zero_slot_seq;
        ] );
      ( "objcache",
        [
          Alcotest.test_case "basic" `Quick test_cache_basic;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "stats" `Quick test_cache_stats;
          Alcotest.test_case "clear" `Quick test_cache_clear;
          Alcotest.test_case "epoch staleness" `Quick test_cache_epoch_staleness;
          Alcotest.test_case "stamp revalidation" `Quick test_cache_stamp_revalidation;
        ] );
      ( "txn",
        [
          Alcotest.test_case "write then read back" `Quick test_txn_write_then_read_back;
          Alcotest.test_case "read-only free commit" `Quick test_txn_read_only_free_commit;
          Alcotest.test_case "occ conflict" `Quick test_txn_occ_conflict;
          Alcotest.test_case "dirty read not validated" `Quick test_txn_dirty_read_not_validated;
          Alcotest.test_case "dirty read promoted on write" `Quick
            test_txn_dirty_read_promoted_on_write;
          Alcotest.test_case "piggyback aborts stale read set" `Quick
            test_txn_piggyback_aborts_stale_read_set;
          Alcotest.test_case "multi-node commit" `Quick test_txn_multi_node_commit;
          Alcotest.test_case "multi-node read validation" `Quick
            test_txn_multi_node_read_validated_commit;
          Alcotest.test_case "explicit abort" `Quick test_txn_abort_explicit;
          Alcotest.test_case "payload capacity" `Quick test_txn_payload_capacity_checked;
          Alcotest.test_case "concurrent increments" `Quick test_txn_concurrent_increments;
        ] );
      ( "cache-interaction",
        [
          Alcotest.test_case "dirty read uses cache" `Quick test_txn_dirty_read_uses_cache;
          Alcotest.test_case "stale cache detected" `Quick test_txn_stale_cache_detected_on_write;
          Alcotest.test_case "evict dirty" `Quick test_txn_evict_dirty;
          Alcotest.test_case "commit refreshes cache" `Quick
            test_txn_commit_refreshes_cached_objects;
          Alcotest.test_case "read_many single round trip" `Quick
            test_txn_read_many_single_round_trip;
          Alcotest.test_case "read_many validates read set" `Quick
            test_txn_read_many_validates_read_set;
          Alcotest.test_case "negative entries not cached" `Quick
            test_txn_negative_entries_not_cached;
          Alcotest.test_case "evict_dirty drops negative read" `Quick
            test_txn_evict_dirty_drops_negative_read;
          Alcotest.test_case "epoch revalidation after crash" `Quick
            test_txn_cache_epoch_revalidation_after_crash;
        ] );
      ( "baseline-primitives",
        [
          Alcotest.test_case "write_linked echoes seq" `Quick test_write_linked_echoes_seq;
          Alcotest.test_case "validate_replicated staleness" `Quick
            test_validate_replicated_catches_stale;
          Alcotest.test_case "read_with_seq" `Quick test_read_with_seq;
        ] );
      ( "replicated",
        [
          Alcotest.test_case "write updates all replicas" `Quick test_replicated_write_updates_all;
          Alcotest.test_case "read validates" `Quick test_replicated_read_validates;
          Alcotest.test_case "dirty read" `Quick test_replicated_dirty_read;
          Alcotest.test_case "blocking commit" `Quick test_replicated_blocking_commit;
          Alcotest.test_case "cached then validated" `Quick test_replicated_cached_then_validated;
        ] );
    ]
