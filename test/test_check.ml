(* Tests for the history-based consistency checker, driven by synthetic
   histories: hand-built event lists exercising each check — commit-order
   replay, real-time order, snapshot freezing, SCS strictness, ambiguity
   resolution, final audits and stamp uniqueness. *)

module Event = Check.History.Event
module Checker = Check.Checker

let check = Alcotest.check

let ev ?client ?(index = 0) ?stamp ?sid ?(ambiguous = false) ~invoked ~returned op =
  {
    Event.client;
    index;
    op;
    invoked_at = invoked;
    returned_at = returned;
    stamp;
    sid;
    ambiguous;
  }

let put ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned key value =
  ev ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned (Event.Put { key; value })

let get ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned key result =
  ev ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned (Event.Get { key; result })

let remove ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned key removed =
  ev ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned (Event.Remove { key; removed })

let scan ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned from count result =
  ev ?client ?index ?stamp ?sid ?ambiguous ~invoked ~returned
    (Event.Scan { from; count; result })

let snapshot ?client ?index ~sid ~invoked ~returned () =
  ev ?client ?index ~sid ~invoked ~returned Event.Snapshot_taken

let run ?final ?strict_scs ?scs_staleness ?twopc ?in_doubt ?(creations = [ (0, []) ]) events =
  Checker.check ?final ?strict_scs ?scs_staleness ?twopc ?in_doubt ~creations ~events ()

let assert_ok ?(msg = "verdict ok") v =
  if not (Checker.ok v) then
    Alcotest.failf "%s, but:@.%a" msg Checker.pp_verdict v

let assert_violation ?(msg = "expected a violation") ~mentioning v =
  check Alcotest.bool msg true
    (List.exists
       (fun viol ->
         let m = viol.Checker.v_message in
         (* substring match *)
         let rec contains i =
           i + String.length mentioning <= String.length m
           && (String.sub m i (String.length mentioning) = mentioning || contains (i + 1))
         in
         contains 0)
       v.Checker.violations)

(* ------------------------------------------------------------------ *)
(* Commit-order replay                                                 *)
(* ------------------------------------------------------------------ *)

let test_clean_history () =
  let v =
    run
      [
        put ~stamp:1L ~invoked:0.00 ~returned:0.01 "a" "1";
        get ~stamp:2L ~invoked:0.02 ~returned:0.03 "a" (Some "1");
        put ~stamp:3L ~invoked:0.04 ~returned:0.05 "b" "2";
        scan ~stamp:4L ~invoked:0.06 ~returned:0.07 "" 10 [ ("a", "1"); ("b", "2") ];
        remove ~stamp:5L ~invoked:0.08 ~returned:0.09 "a" true;
        get ~stamp:6L ~invoked:0.10 ~returned:0.11 "a" None;
      ]
  in
  assert_ok v;
  check Alcotest.int "ops checked" 6 v.Checker.ops_checked;
  check Alcotest.int "no snapshot reads" 0 v.Checker.snapshot_reads_checked

let test_stale_read_caught () =
  let v =
    run
      [
        put ~stamp:1L ~invoked:0.00 ~returned:0.01 "a" "old";
        put ~stamp:2L ~invoked:0.02 ~returned:0.03 "a" "new";
        get ~stamp:3L ~invoked:0.04 ~returned:0.05 "a" (Some "old");
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"get \"a\"" v;
  (* The counterexample carries the nearby writes on the key. *)
  let viol = List.hd v.Checker.violations in
  check Alcotest.bool "context present" true (List.length viol.Checker.v_context >= 2)

let test_wrong_remove_caught () =
  let v = run [ remove ~stamp:1L ~invoked:0.0 ~returned:0.1 "ghost" true ] in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"remove \"ghost\"" v

let test_scan_divergence_caught () =
  let v =
    run
      [
        put ~stamp:1L ~invoked:0.00 ~returned:0.01 "a" "1";
        put ~stamp:2L ~invoked:0.02 ~returned:0.03 "b" "2";
        scan ~stamp:3L ~invoked:0.04 ~returned:0.05 "" 10 [ ("a", "1"); ("b", "3") ];
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"first divergence" v

let test_missing_stamp_caught () =
  let v = run [ get ~invoked:0.0 ~returned:0.1 "a" None ] in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"no commit stamp" v

(* ------------------------------------------------------------------ *)
(* Real-time order and stamp uniqueness                                *)
(* ------------------------------------------------------------------ *)

let test_realtime_order_violation () =
  (* A returned before B was invoked, yet A's stamp is above B's: the
     serial order contradicts real time (not strictly serializable). *)
  let v =
    run
      [
        put ~stamp:10L ~invoked:0.0 ~returned:0.1 "a" "1";
        put ~stamp:5L ~invoked:0.2 ~returned:0.3 "b" "2";
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"real-time order" v

let test_realtime_order_concurrent_ok () =
  (* Overlapping operations may serialize either way. *)
  let v =
    run
      [
        put ~stamp:10L ~invoked:0.0 ~returned:0.2 "a" "1";
        put ~stamp:5L ~invoked:0.1 ~returned:0.3 "b" "2";
      ]
  in
  assert_ok v

let test_duplicate_stamp_caught () =
  let v =
    run
      [
        put ~stamp:7L ~invoked:0.0 ~returned:0.1 "a" "1";
        put ~stamp:7L ~invoked:0.2 ~returned:0.3 "b" "2";
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"duplicate commit stamp" v;
  check Alcotest.bool "global violation" true
    (List.exists (fun viol -> viol.Checker.v_index = -1) v.Checker.violations)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_frozen_prefix () =
  (* sid 100 was created at stamp 2: it sees the put at stamp 1, not the
     one at stamp 3. *)
  let creations = [ (0, [ (100L, 2L) ]) ] in
  let history sid_result =
    [
      put ~stamp:1L ~invoked:0.00 ~returned:0.01 "a" "frozen";
      put ~stamp:3L ~invoked:0.02 ~returned:0.03 "a" "later";
      get ~sid:100L ~invoked:0.04 ~returned:0.05 "a" sid_result;
    ]
  in
  let v = run ~creations (history (Some "frozen")) in
  assert_ok ~msg:"frozen value accepted" v;
  check Alcotest.int "snapshot read counted" 1 v.Checker.snapshot_reads_checked;
  let v = run ~creations (history (Some "later")) in
  check Alcotest.bool "leaked later write" false (Checker.ok v);
  assert_violation ~mentioning:"snapshot get" v

let test_snapshot_without_creation_record () =
  let v = run [ get ~sid:999L ~invoked:0.0 ~returned:0.1 "a" None ] in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"no creation record" v

let test_scs_strictness () =
  (* The put committed (stamp 5) and returned before the snapshot request
     started, but the granted snapshot's creation stamp is 2: the
     snapshot misses a completed commit. *)
  let creations = [ (0, [ (100L, 2L) ]) ] in
  let events =
    [
      put ~stamp:5L ~invoked:0.00 ~returned:0.10 "a" "1";
      snapshot ~sid:100L ~invoked:0.20 ~returned:0.30 ();
    ]
  in
  let v = run ~creations events in
  check Alcotest.bool "strict mode rejects" false (Checker.ok v);
  assert_violation ~mentioning:"misses a commit" v;
  (* With a staleness bound (k > 0) the same history is legal. *)
  assert_ok ~msg:"non-strict mode accepts" (run ~strict_scs:false ~creations events)

let test_scs_staleness_bound () =
  (* Same history as {!test_scs_strictness}: the missed commit completed
     0.10s before the snapshot request. A staleness bound k relaxes the
     rule by exactly k — legal under k = 0.15, still a violation under
     k = 0.05. *)
  let creations = [ (0, [ (100L, 2L) ]) ] in
  let events =
    [
      put ~stamp:5L ~invoked:0.00 ~returned:0.10 "a" "1";
      snapshot ~sid:100L ~invoked:0.20 ~returned:0.30 ();
    ]
  in
  assert_ok ~msg:"inside the staleness bound" (run ~scs_staleness:0.15 ~creations events);
  let v = run ~scs_staleness:0.05 ~creations events in
  check Alcotest.bool "outside the bound rejected" false (Checker.ok v);
  assert_violation ~mentioning:"misses a commit" v

(* ------------------------------------------------------------------ *)
(* 2PC atomicity and in-doubt residue                                  *)
(* ------------------------------------------------------------------ *)

let test_twopc_consistent () =
  let twopc = [ (0, 7L, `Committed); (1, 7L, `Committed); (0, 9L, `Aborted); (1, 9L, `Aborted) ] in
  let v = run ~twopc [] in
  assert_ok ~msg:"consistent decisions" v;
  check Alcotest.int "records checked" 4 v.Checker.twopc_checked

let test_twopc_split_decision_caught () =
  let v = run ~twopc:[ (0, 7L, `Committed); (1, 7L, `Aborted) ] [] in
  check Alcotest.bool "split decision rejected" false (Checker.ok v);
  assert_violation ~mentioning:"2PC atomicity" v;
  let first = List.hd v.Checker.violations in
  check Alcotest.int "global violation" (-1) first.Checker.v_index

let test_in_doubt_residue_caught () =
  assert_ok ~msg:"zero in doubt" (run ~in_doubt:0 []);
  let v = run ~in_doubt:2 [] in
  check Alcotest.bool "in-doubt residue rejected" false (Checker.ok v);
  assert_violation ~mentioning:"in doubt" v

(* ------------------------------------------------------------------ *)
(* Ambiguous operations                                                *)
(* ------------------------------------------------------------------ *)

let test_ambiguous_put_resolved_applied () =
  (* The ambiguous put may or may not have landed; the later read proves
     it did, and the model absorbs it. *)
  let v =
    run
      [
        put ~ambiguous:true ~invoked:0.00 ~returned:0.10 "a" "maybe";
        get ~stamp:1L ~invoked:0.20 ~returned:0.30 "a" (Some "maybe");
        get ~stamp:2L ~invoked:0.40 ~returned:0.50 "a" (Some "maybe");
      ]
  in
  assert_ok v;
  check Alcotest.int "resolved" 1 v.Checker.candidates_resolved

let test_ambiguous_put_not_applied () =
  let v =
    run
      ~final:[ (0, []) ]
      [
        put ~ambiguous:true ~invoked:0.00 ~returned:0.10 "a" "maybe";
        get ~stamp:1L ~invoked:0.20 ~returned:0.30 "a" None;
      ]
  in
  assert_ok v;
  check Alcotest.int "nothing resolved" 0 v.Checker.candidates_resolved

let test_ambiguous_remove_resolved () =
  let v =
    run
      [
        put ~stamp:1L ~invoked:0.00 ~returned:0.01 "a" "1";
        remove ~ambiguous:true ~invoked:0.02 ~returned:0.03 "a" false;
        get ~stamp:2L ~invoked:0.04 ~returned:0.05 "a" None;
      ]
  in
  assert_ok v;
  check Alcotest.int "resolved" 1 v.Checker.candidates_resolved

let test_candidate_expired_by_overwrite () =
  (* A committed put that started after the ambiguous window closed
     overwrites the key either way; the stale candidate can no longer
     excuse a read of the ambiguous value. *)
  let v =
    run
      [
        put ~ambiguous:true ~invoked:0.00 ~returned:0.10 "a" "maybe";
        put ~stamp:1L ~invoked:0.20 ~returned:0.30 "a" "committed";
        get ~stamp:2L ~invoked:0.40 ~returned:0.50 "a" (Some "maybe");
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"get \"a\"" v

let test_too_many_ambiguous_inconclusive () =
  let amb = List.init 9 (fun i ->
      let t = float_of_int i /. 100.0 in
      put ~ambiguous:true ~invoked:t ~returned:(t +. 0.001) "hot" (string_of_int i))
  in
  let v = run amb in
  assert_ok ~msg:"over-budget is inconclusive, not failed" v;
  check Alcotest.bool "inconclusive noted" true (v.Checker.inconclusive <> [])

(* ------------------------------------------------------------------ *)
(* Final audit                                                         *)
(* ------------------------------------------------------------------ *)

let test_final_audit_mismatch () =
  let v =
    run
      ~final:[ (0, [ ("a", "2") ]) ]
      [ put ~stamp:1L ~invoked:0.0 ~returned:0.1 "a" "1" ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v);
  assert_violation ~mentioning:"final audit" v

let test_final_audit_match () =
  let v =
    run
      ~final:[ (0, [ ("a", "1"); ("b", "2") ]) ]
      [
        put ~stamp:1L ~invoked:0.00 ~returned:0.01 "a" "1";
        put ~stamp:2L ~invoked:0.02 ~returned:0.03 "b" "2";
        put ~stamp:3L ~invoked:0.04 ~returned:0.05 "c" "3";
        remove ~stamp:4L ~invoked:0.06 ~returned:0.07 "c" true;
      ]
  in
  assert_ok v

(* ------------------------------------------------------------------ *)
(* Multiple indexes                                                    *)
(* ------------------------------------------------------------------ *)

let test_indexes_checked_independently () =
  (* The same key lives in two indexes with different values; each index
     replays against its own model. *)
  let v =
    Checker.check
      ~creations:[ (0, []); (1, []) ]
      ~events:
        [
          put ~index:0 ~stamp:1L ~invoked:0.00 ~returned:0.01 "k" "zero";
          put ~index:1 ~stamp:2L ~invoked:0.02 ~returned:0.03 "k" "one";
          get ~index:0 ~stamp:3L ~invoked:0.04 ~returned:0.05 "k" (Some "zero");
          get ~index:1 ~stamp:4L ~invoked:0.06 ~returned:0.07 "k" (Some "one");
        ]
      ()
  in
  assert_ok v;
  check Alcotest.int "all ops checked" 4 v.Checker.ops_checked

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

let test_history_recorder () =
  let h = Check.History.create () in
  let e1 = put ~stamp:1L ~invoked:0.0 ~returned:0.1 "a" "1" in
  let e2 = get ~stamp:2L ~invoked:0.2 ~returned:0.3 "a" (Some "1") in
  Check.History.record h e1;
  (Check.History.tracer h) e2;
  check Alcotest.int "length" 2 (Check.History.length h);
  (match Check.History.events h with
  | [ a; b ] ->
      check Alcotest.bool "order kept" true (a == e1 && b == e2)
  | _ -> Alcotest.fail "wrong event count");
  Check.History.clear h;
  check Alcotest.int "cleared" 0 (Check.History.length h)

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)
(* ------------------------------------------------------------------ *)

let branch_created ~stamp ~parent ~sid ~invoked ~returned () =
  ev ~stamp ~invoked ~returned (Event.Branch_created { parent; sid })

let branch_put ~stamp ~at ~invoked ~returned key value =
  ev ~stamp ~invoked ~returned (Event.Branch_put { at; key; value })

let branch_get ?stamp ~at ~invoked ~returned key result =
  ev ?stamp ~invoked ~returned (Event.Branch_get { at; key; result })

let test_branch_frozen_ancestor () =
  (* Forking freezes the parent; reads pinned at the frozen version see
     exactly its pre-fork state even as the child advances. *)
  let v =
    run
      [
        branch_put ~stamp:1L ~at:0L ~invoked:0.00 ~returned:0.01 "a" "pre";
        branch_created ~stamp:2L ~parent:0L ~sid:1L ~invoked:0.02 ~returned:0.03 ();
        branch_put ~stamp:3L ~at:1L ~invoked:0.04 ~returned:0.05 "a" "child";
        branch_get ~at:0L ~invoked:0.06 ~returned:0.07 "a" (Some "pre");
        branch_get ~stamp:4L ~at:1L ~invoked:0.08 ~returned:0.09 "a" (Some "child");
      ]
  in
  assert_ok ~msg:"frozen ancestor state observed" v;
  (* Only the read pinned at the frozen version exercises the
     frozen-ancestor rule; the stamped tip read replays normally. *)
  check Alcotest.bool "branch read counted" true (v.Checker.branch_reads_checked >= 1)

let test_branch_isolation_leak_caught () =
  (* A read pinned at the frozen parent observing the child's write is a
     branch-isolation leak. *)
  let v =
    run
      [
        branch_put ~stamp:1L ~at:0L ~invoked:0.00 ~returned:0.01 "a" "pre";
        branch_created ~stamp:2L ~parent:0L ~sid:1L ~invoked:0.02 ~returned:0.03 ();
        branch_put ~stamp:3L ~at:1L ~invoked:0.04 ~returned:0.05 "a" "child";
        branch_get ~at:0L ~invoked:0.06 ~returned:0.07 "a" (Some "child");
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v)

let test_sibling_leak_caught () =
  (* Two children forked from the same parent: a write on one sibling
     must not surface in the other's realm. *)
  let v =
    run
      [
        branch_created ~stamp:1L ~parent:0L ~sid:1L ~invoked:0.00 ~returned:0.01 ();
        branch_created ~stamp:2L ~parent:0L ~sid:2L ~invoked:0.02 ~returned:0.03 ();
        branch_put ~stamp:3L ~at:1L ~invoked:0.04 ~returned:0.05 "k" "from-sibling";
        branch_get ~stamp:4L ~at:2L ~invoked:0.06 ~returned:0.07 "k" (Some "from-sibling");
      ]
  in
  check Alcotest.bool "not ok" false (Checker.ok v)

(* ------------------------------------------------------------------ *)
(* Synthetic histories (Histgen): streaming vs list, falsifiability    *)
(* ------------------------------------------------------------------ *)

let gen_history cfg =
  let events = ref [] in
  let gen = Chaos.Histgen.generate cfg (fun e -> events := e :: !events) in
  (gen, List.rev !events)

let histgen_cfg ?(branching = false) ?fault () =
  { Chaos.Histgen.default with Chaos.Histgen.ops = 20_000; branching; fault }

let test_stream_matches_list () =
  (* Feeding the stream by hand and going through the list wrapper must
     produce the same verdict on the same history, linear and branching. *)
  List.iter
    (fun branching ->
      let gen, events = gen_history (histgen_cfg ~branching ()) in
      let listed =
        Checker.check
          ~creations:gen.Chaos.Histgen.gen_creations
          ~final:gen.Chaos.Histgen.gen_final ~events ()
      in
      let stream =
        Check.Stream.create
          {
            Check.Stream.Config.default with
            Check.Stream.Config.creations = gen.Chaos.Histgen.gen_creations;
          }
      in
      List.iter (Check.Stream.feed stream) events;
      let streamed =
        Check.Stream.finish ~final:gen.Chaos.Histgen.gen_final stream
      in
      check Alcotest.bool
        (Printf.sprintf "identical verdicts (branching=%b)" branching)
        true
        (listed = streamed);
      assert_ok ~msg:"clean synthetic history passes" listed)
    [ false; true ]

let test_histgen_branching_clean () =
  let gen, events = gen_history (histgen_cfg ~branching:true ()) in
  let v =
    Checker.check ~creations:gen.Chaos.Histgen.gen_creations ~events ()
  in
  assert_ok ~msg:"branching synthetic history passes" v;
  check Alcotest.bool "branch reads exercised" true (v.Checker.branch_reads_checked > 100)

let test_histgen_stale_read_caught () =
  let gen, events =
    gen_history (histgen_cfg ~fault:Chaos.Histgen.Stale_read ())
  in
  let v =
    Checker.check
      ~creations:gen.Chaos.Histgen.gen_creations
      ~final:gen.Chaos.Histgen.gen_final ~events ()
  in
  check Alcotest.bool "seeded stale read caught" false (Checker.ok v)

let test_histgen_branch_isolation_caught () =
  let gen, events =
    gen_history (histgen_cfg ~branching:true ~fault:Chaos.Histgen.Branch_isolation ())
  in
  let v =
    Checker.check ~creations:gen.Chaos.Histgen.gen_creations ~events ()
  in
  check Alcotest.bool "seeded isolation leak caught" false (Checker.ok v)

(* ------------------------------------------------------------------ *)
(* Event JSON                                                          *)
(* ------------------------------------------------------------------ *)

let test_event_json_roundtrip () =
  let samples =
    [
      put ~client:3 ~stamp:7L ~invoked:0.5 ~returned:0.625 "k" "v";
      get ~index:2 ~sid:9L ~invoked:1.0 ~returned:1.25 "k" None;
      remove ~stamp:8L ~ambiguous:true ~invoked:2.0 ~returned:2.5 "k" false;
      scan ~stamp:9L ~invoked:3.0 ~returned:3.5 "a" 4 [ ("a", "1"); ("b", "2") ];
      snapshot ~sid:11L ~invoked:4.0 ~returned:4.5 ();
      branch_created ~stamp:12L ~parent:0L ~sid:5L ~invoked:5.0 ~returned:5.5 ();
      ev ~stamp:13L ~invoked:6.0 ~returned:6.5 (Event.Branch_deleted { sid = 5L });
      branch_get ~stamp:14L ~at:5L ~invoked:7.0 ~returned:7.5 "k" (Some "v");
      branch_put ~stamp:15L ~at:5L ~invoked:8.0 ~returned:8.5 "k" "w";
      ev ~stamp:16L ~invoked:9.0 ~returned:9.5
        (Event.Branch_remove { at = 5L; key = "k"; removed = true });
      ev ~stamp:17L ~invoked:10.0 ~returned:10.5
        (Event.Branch_scan { at = 5L; from = "a"; count = 2; result = [ ("a", "1") ] });
      ev ~stamp:18L ~invoked:11.0 ~returned:11.5
        (Event.Get_many { key = "k"; results = [ (0L, Some "x"); (5L, None) ] });
      ev ~stamp:19L ~invoked:12.0 ~returned:12.5
        (Event.History { from = 5L; key = "k"; results = [ (0L, None); (5L, Some "w") ] });
    ]
  in
  List.iteri
    (fun i e ->
      let e' = Event.of_json (Event.to_json e) in
      if e' <> e then
        Alcotest.failf "sample %d did not roundtrip:@.%a@.vs@.%a" i Event.pp e Event.pp e')
    samples;
  (* A non-event payload is rejected, not misparsed. *)
  match Event.of_json (Obs.Json.String "nope") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_json accepted a non-event"

let () =
  Alcotest.run "check"
    [
      ( "replay",
        [
          Alcotest.test_case "clean history" `Quick test_clean_history;
          Alcotest.test_case "stale read caught" `Quick test_stale_read_caught;
          Alcotest.test_case "wrong remove caught" `Quick test_wrong_remove_caught;
          Alcotest.test_case "scan divergence caught" `Quick test_scan_divergence_caught;
          Alcotest.test_case "missing stamp caught" `Quick test_missing_stamp_caught;
        ] );
      ( "order",
        [
          Alcotest.test_case "real-time violation" `Quick test_realtime_order_violation;
          Alcotest.test_case "concurrent ok" `Quick test_realtime_order_concurrent_ok;
          Alcotest.test_case "duplicate stamp" `Quick test_duplicate_stamp_caught;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "frozen prefix" `Quick test_snapshot_frozen_prefix;
          Alcotest.test_case "missing creation record" `Quick
            test_snapshot_without_creation_record;
          Alcotest.test_case "scs strictness" `Quick test_scs_strictness;
          Alcotest.test_case "scs staleness bound" `Quick test_scs_staleness_bound;
        ] );
      ( "twopc",
        [
          Alcotest.test_case "consistent decisions" `Quick test_twopc_consistent;
          Alcotest.test_case "split decision caught" `Quick test_twopc_split_decision_caught;
          Alcotest.test_case "in-doubt residue caught" `Quick test_in_doubt_residue_caught;
        ] );
      ( "ambiguity",
        [
          Alcotest.test_case "put resolved (applied)" `Quick test_ambiguous_put_resolved_applied;
          Alcotest.test_case "put not applied" `Quick test_ambiguous_put_not_applied;
          Alcotest.test_case "remove resolved" `Quick test_ambiguous_remove_resolved;
          Alcotest.test_case "expired by overwrite" `Quick test_candidate_expired_by_overwrite;
          Alcotest.test_case "over budget inconclusive" `Quick
            test_too_many_ambiguous_inconclusive;
        ] );
      ( "audit",
        [
          Alcotest.test_case "final mismatch" `Quick test_final_audit_mismatch;
          Alcotest.test_case "final match" `Quick test_final_audit_match;
        ] );
      ( "structure",
        [
          Alcotest.test_case "independent indexes" `Quick test_indexes_checked_independently;
          Alcotest.test_case "history recorder" `Quick test_history_recorder;
        ] );
      ( "branching",
        [
          Alcotest.test_case "frozen ancestor" `Quick test_branch_frozen_ancestor;
          Alcotest.test_case "isolation leak caught" `Quick test_branch_isolation_leak_caught;
          Alcotest.test_case "sibling leak caught" `Quick test_sibling_leak_caught;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "stream matches list" `Quick test_stream_matches_list;
          Alcotest.test_case "branching clean" `Quick test_histgen_branching_clean;
          Alcotest.test_case "stale read caught" `Quick test_histgen_stale_read_caught;
          Alcotest.test_case "branch isolation caught" `Quick
            test_histgen_branch_isolation_caught;
        ] );
      ( "json",
        [ Alcotest.test_case "event roundtrip" `Quick test_event_json_roundtrip ] );
    ]
