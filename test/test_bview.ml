(* Property suite for the slotted (v2) node wire format and its
   zero-copy view: encode/decode/view agreement, prefix-truncation edge
   cases, legacy back-compat, corruption detection, stamp stability, and
   the codec span/checksum helpers the view is built on. *)

module Bkey = Btree.Bkey
module Bnode = Btree.Bnode
module Bview = Btree.Bview
module Objref = Dyntxn.Objref
module Address = Sinfonia.Address

let check = Alcotest.check

let ref_ node off = Objref.make ~addr:(Address.make ~node ~off) ~len:4096

let leaf ?(low = Bkey.Neg_inf) ?(high = Bkey.Pos_inf) ?(snap = 0L) ?(descendants = [||]) entries =
  {
    (Bnode.make_leaf ~low ~high ~snap (Array.of_list entries)) with
    Bnode.descendants;
  }

let internal ?(low = Bkey.Neg_inf) ?(high = Bkey.Pos_inf) ?(snap = 0L) ?(descendants = [||])
    ~height keys children =
  {
    (Bnode.make_internal ~height ~low ~high ~snap ~keys:(Array.of_list keys)
       ~children:(Array.of_list children))
    with
    Bnode.descendants;
  }

let node_equal (a : Bnode.t) (b : Bnode.t) =
  a.Bnode.height = b.Bnode.height
  && Bkey.fence_equal a.Bnode.low b.Bnode.low
  && Bkey.fence_equal a.Bnode.high b.Bnode.high
  && Int64.equal a.Bnode.snap_created b.Bnode.snap_created
  && a.Bnode.descendants = b.Bnode.descendants
  &&
  match (a.Bnode.body, b.Bnode.body) with
  | Bnode.Leaf x, Bnode.Leaf y -> x = y
  | Bnode.Internal x, Bnode.Internal y ->
      x.keys = y.keys && Array.for_all2 Objref.equal x.children y.children
  | _ -> false

let view_of node =
  let payload = Bnode.encode node in
  Alcotest.(check bool) "slotted" true (Bview.is_slotted payload);
  Bview.of_string payload

(* ------------------------------------------------------------------ *)
(* Unit edge cases: prefix truncation, empty keys, fence boundaries     *)
(* ------------------------------------------------------------------ *)

let test_empty_leaf () =
  let n = leaf [] in
  let v = view_of n in
  check Alcotest.int "nkeys" 0 (Bview.nkeys v);
  check Alcotest.bool "find" true (Bview.leaf_find v "x" = None);
  check Alcotest.int "lower_bound" 0 (Bview.lower_bound v "x");
  check Alcotest.bool "roundtrip" true (node_equal n (Bnode.decode (Bnode.encode n)))

let test_empty_key_entry () =
  (* The empty string is a legal key and always the smallest. *)
  let n = leaf [ ("", "empty"); ("a", "1") ] in
  let v = view_of n in
  check (Alcotest.option Alcotest.string) "empty key" (Some "empty") (Bview.leaf_find v "");
  check (Alcotest.option Alcotest.string) "other key" (Some "1") (Bview.leaf_find v "a");
  check Alcotest.int "lower_bound at empty" 0 (Bview.lower_bound v "");
  check Alcotest.bool "roundtrip" true (node_equal n (Bnode.decode (Bnode.encode n)))

let test_shared_prefix_run () =
  (* All keys share a long prefix: the directory stores 1-2 byte
     suffixes, and queries shorter/outside the prefix take the
     prefix-comparison short-circuit. *)
  let p = "user/profile/2026/" in
  let n = leaf (List.init 9 (fun i -> (p ^ string_of_int i, "v" ^ string_of_int i))) in
  let v = view_of n in
  for i = 0 to 8 do
    let k = p ^ string_of_int i in
    check (Alcotest.option Alcotest.string) k (Some ("v" ^ string_of_int i)) (Bview.leaf_find v k)
  done;
  (* Queries relating to the common prefix in every possible way. *)
  check (Alcotest.option Alcotest.string) "below prefix" None (Bview.leaf_find v "aaa");
  check Alcotest.int "below prefix lb" 0 (Bview.lower_bound v "aaa");
  check (Alcotest.option Alcotest.string) "above prefix" None (Bview.leaf_find v "zzz");
  check Alcotest.int "above prefix lb" 9 (Bview.lower_bound v "zzz");
  check (Alcotest.option Alcotest.string) "proper prefix of prefix" None (Bview.leaf_find v "user/");
  check Alcotest.int "proper prefix lb" 0 (Bview.lower_bound v "user/");
  check (Alcotest.option Alcotest.string) "exactly the prefix" None (Bview.leaf_find v p);
  check Alcotest.bool "roundtrip" true (node_equal n (Bnode.decode (Bnode.encode n)))

let test_fence_boundaries () =
  (* Keys at the fences; in_range is [low, high). *)
  let n = leaf ~low:(Bkey.Key "f") ~high:(Bkey.Key "q") [ ("f", "1"); ("p", "2") ] in
  let v = view_of n in
  check Alcotest.bool "low in range" true (Bview.in_range v "f");
  check Alcotest.bool "high out of range" false (Bview.in_range v "q");
  check Alcotest.bool "below low" false (Bview.in_range v "a");
  check Alcotest.bool "fences decode" true
    (Bkey.fence_equal (Bview.low v) (Bkey.Key "f") && Bkey.fence_equal (Bview.high v) (Bkey.Key "q"))

let test_internal_routing () =
  let kids = [ ref_ 0 4096; ref_ 1 4096; ref_ 2 4096 ] in
  let n = internal ~height:3 ~snap:5L ~descendants:[| 7L; 9L |] [ "g"; "p" ] kids in
  let v = view_of n in
  check Alcotest.int "height" 3 (Bview.height v);
  check Alcotest.int "children" 3 (Bview.child_count v);
  check Alcotest.int "descendants" 2 (Bview.n_descendants v);
  check Alcotest.bool "descendant pred" true (Bview.exists_descendant v (Int64.equal 9L));
  List.iter
    (fun k ->
      let i, p = Bnode.child_for n k in
      let i', p' = Bview.child_for v k in
      check Alcotest.int ("index for " ^ k) i i';
      check Alcotest.bool ("pointer for " ^ k) true (Objref.equal p p'))
    [ "a"; "g"; "m"; "p"; "z"; "" ]

let test_stamp_stability () =
  let n = leaf ~snap:3L [ ("a", "1"); ("b", "2") ] in
  let s1 = Bview.stamp (view_of n) in
  let s2 = Bview.stamp (view_of n) in
  check Alcotest.int64 "same content, same stamp" s1 s2;
  let s3 = Bview.stamp (view_of (leaf ~snap:3L [ ("a", "1"); ("b", "changed") ])) in
  check Alcotest.bool "different content, different stamp" true (not (Int64.equal s1 s3));
  check Alcotest.bool "same_stamp on raw payloads" true
    (Bview.same_stamp (Bnode.encode n) (Bnode.encode n));
  check Alcotest.bool "same_stamp rejects legacy payloads" false
    (Bview.same_stamp (Bnode.encode_legacy n) (Bnode.encode_legacy n))

let test_legacy_backcompat () =
  (* Payloads written before the slotted format (no CRC trailer) must
     still decode. *)
  let nodes =
    [
      leaf [];
      leaf ~low:(Bkey.Key "a") ~high:(Bkey.Key "b") ~snap:42L [ ("a", "value") ];
      internal ~height:1 [ "g" ] [ ref_ 0 4096; ref_ 1 4096 ];
    ]
  in
  List.iter
    (fun n ->
      check Alcotest.bool "legacy decode" true (node_equal n (Bnode.decode (Bnode.encode_legacy n))))
    nodes

let flip_byte s i = String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 0x5a) else c) s

let test_corrupt_slot_directory () =
  (* A flipped byte anywhere in the slot directory must fail decode (the
     CRC); the structurally-validated view may accept or reject it, but
     the write path never consumes corrupt bytes. *)
  let n = leaf (List.init 8 (fun i -> (Printf.sprintf "key%02d" i, "v"))) in
  let payload = Bnode.encode n in
  let dir_off, dir_len = Bview.dir_bounds (Bview.of_string payload) in
  check Alcotest.bool "directory nonempty" true (dir_len > 0);
  for i = dir_off to dir_off + dir_len - 1 do
    let corrupt = flip_byte payload i in
    match Bnode.decode corrupt with
    | (_ : Bnode.t) -> Alcotest.failf "corrupt directory byte %d decoded" i
    | exception Codec.Decode_error _ -> ()
  done

let test_truncation_rejected () =
  let payload = Bnode.encode (leaf [ ("a", "1"); ("b", "2") ]) in
  for len = 0 to String.length payload - 1 do
    let cut = String.sub payload 0 len in
    (match Bview.of_string cut with
    | (_ : Bview.t) ->
        (* A shorter prefix can parse structurally only if every span
           still lands in bounds; the CRC must still catch it. *)
        ()
    | exception Codec.Decode_error _ -> ());
    match Bnode.decode cut with
    | (_ : Bnode.t) -> Alcotest.failf "truncation to %d bytes decoded" len
    | exception Codec.Decode_error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Codec helpers under the view                                         *)
(* ------------------------------------------------------------------ *)

let test_enc_checksum_framing () =
  let e = Codec.Enc.create ~initial_size:4 () in
  Codec.Enc.raw e "hello, slotted world";
  let framed = Codec.Enc.to_string_with_checksum e in
  check Alcotest.string "single-alloc framing matches with_checksum"
    (Codec.with_checksum "hello, slotted world")
    framed;
  check Alcotest.string "roundtrip" "hello, slotted world" (Codec.check_checksum framed);
  Codec.verify_checksum_in_place framed 0 (String.length framed);
  match Codec.verify_checksum_in_place (flip_byte framed 2) 0 (String.length framed) with
  | () -> Alcotest.fail "corrupt frame verified"
  | exception Codec.Decode_error _ -> ()

let test_dec_span_accessors () =
  let e = Codec.Enc.create () in
  Codec.Enc.raw e "abc";
  Codec.Enc.bytes e "payload";
  let s = Codec.Enc.to_string e in
  let d = Codec.Dec.of_string s in
  let pos, len = Codec.Dec.raw_view d 3 in
  check Alcotest.string "raw span" "abc" (String.sub s pos len);
  let pos, len = Codec.Dec.bytes_view d in
  check Alcotest.string "bytes span" "payload" (String.sub s pos len);
  check Alcotest.bool "consumed" true (Codec.Dec.at_end d);
  (* Span accessors agree with their copying counterparts. *)
  let d2 = Codec.Dec.of_string s in
  check Alcotest.string "raw agrees" "abc" (Codec.Dec.raw d2 3);
  check Alcotest.string "bytes agrees" "payload" (Codec.Dec.bytes d2)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let arbitrary_key =
  (* Mix of arbitrary short keys and keys from a shared-prefix family,
     so generated leaves exercise prefix truncation. *)
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:printable (int_range 0 12);
        map (fun (p, s) -> List.nth [ "acct/"; "acct/eu/"; "idx" ] p ^ s)
          (pair (int_range 0 2) (string_size ~gen:printable (int_range 0 6)));
      ])

let arbitrary_leaf_node =
  let open QCheck in
  let gen =
    Gen.(
      let* entries = small_list (pair arbitrary_key (string_size ~gen:printable (int_range 0 10))) in
      let* snap = map Int64.of_int small_nat in
      let* ndesc = int_range 0 3 in
      let* descs = list_repeat ndesc (map Int64.of_int small_nat) in
      let sorted =
        List.sort_uniq (fun (a, _) (b, _) -> Bkey.compare a b) entries |> Array.of_list
      in
      return
        {
          (Bnode.make_leaf ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap sorted) with
          Bnode.descendants = Array.of_list descs;
        })
  in
  make ~print:(Format.asprintf "%a" Bnode.pp) gen

let arbitrary_internal_node =
  let open QCheck in
  let gen =
    Gen.(
      let* keys = small_list arbitrary_key in
      let keys = List.sort_uniq Bkey.compare keys in
      let keys = if keys = [] then [ "m" ] else keys in
      let* height = int_range 1 6 in
      let* snap = map Int64.of_int small_nat in
      let children = List.mapi (fun i _ -> ref_ (i mod 3) (4096 * (i + 1))) (() :: List.map ignore keys) in
      return
        (Bnode.make_internal ~height ~low:Bkey.Neg_inf ~high:Bkey.Pos_inf ~snap
           ~keys:(Array.of_list keys) ~children:(Array.of_list children)))
  in
  make ~print:(Format.asprintf "%a" Bnode.pp) gen

let prop_slotted_roundtrip =
  QCheck.Test.make ~name:"slotted encode/decode roundtrip" ~count:500 arbitrary_leaf_node (fun n ->
      node_equal n (Bnode.decode (Bnode.encode n)))

let prop_internal_roundtrip =
  QCheck.Test.make ~name:"internal encode/decode roundtrip" ~count:300 arbitrary_internal_node
    (fun n -> node_equal n (Bnode.decode (Bnode.encode n)))

let prop_view_agrees_with_decode =
  (* The zero-copy view answers every query exactly like the decoded
     node: membership, insertion points, and per-slot entries. *)
  QCheck.Test.make ~name:"view answers = decoded answers" ~count:500
    QCheck.(pair arbitrary_leaf_node (list (QCheck.make arbitrary_key)))
    (fun (n, queries) ->
      let v = Bview.of_string (Bnode.encode n) in
      let decoded = Bnode.decode (Bnode.encode n) in
      Bview.nkeys v = Bnode.nkeys decoded
      && Array.to_list (Bview.leaf_entries v) = Array.to_list (Bnode.leaf_entries decoded)
      && List.for_all
           (fun q ->
             Bview.leaf_find v q = Bnode.leaf_find decoded q
             && Bview.lower_bound v q = Bnode.leaf_entries_from decoded q)
           (queries @ List.map fst (Array.to_list (Bnode.leaf_entries n))))

let prop_view_routes_like_decode =
  QCheck.Test.make ~name:"view routing = decoded routing" ~count:300
    QCheck.(pair arbitrary_internal_node (small_list (QCheck.make arbitrary_key)))
    (fun (n, queries) ->
      let v = Bview.of_string (Bnode.encode n) in
      List.for_all
        (fun q ->
          let i, p = Bnode.child_for n q in
          let i', p' = Bview.child_for v q in
          i = i' && Objref.equal p p')
        ("" :: queries))

let prop_legacy_roundtrip =
  QCheck.Test.make ~name:"legacy payloads still decode" ~count:300 arbitrary_leaf_node (fun n ->
      node_equal n (Bnode.decode (Bnode.encode_legacy n)))

let prop_stamp_stable =
  QCheck.Test.make ~name:"stamp stable across re-encode" ~count:300 arbitrary_leaf_node (fun n ->
      Bview.same_stamp (Bnode.encode n) (Bnode.encode n))

let () =
  Alcotest.run "bview"
    [
      ( "edges",
        [
          Alcotest.test_case "empty leaf" `Quick test_empty_leaf;
          Alcotest.test_case "empty key entry" `Quick test_empty_key_entry;
          Alcotest.test_case "shared prefix run" `Quick test_shared_prefix_run;
          Alcotest.test_case "fence boundaries" `Quick test_fence_boundaries;
          Alcotest.test_case "internal routing" `Quick test_internal_routing;
          Alcotest.test_case "stamp stability" `Quick test_stamp_stability;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "legacy back-compat" `Quick test_legacy_backcompat;
          Alcotest.test_case "corrupt slot directory" `Quick test_corrupt_slot_directory;
          Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
        ] );
      ( "codec",
        [
          Alcotest.test_case "checksum framing" `Quick test_enc_checksum_framing;
          Alcotest.test_case "span accessors" `Quick test_dec_span_accessors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_slotted_roundtrip;
            prop_internal_roundtrip;
            prop_view_agrees_with_decode;
            prop_view_routes_like_decode;
            prop_legacy_roundtrip;
            prop_stamp_stable;
          ] );
    ]
