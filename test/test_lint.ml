(* Tier-1 gate for minuet_lint itself: the fixture self-test, exact
   finding anchors, repo-wide cleanliness, falsifiability (a disabled
   rule goes silent), the suppression window, and the JSON report. *)

let check = Alcotest.check

(* Copied next to the test binary by the dune [deps] glob. *)
let fixtures_dir = "lint_fixtures"

(* Under [dune runtest] the cwd is _build/default/test, and dune has
   copied every library source into _build/default — walk up until the
   tree root shows a known protocol source. *)
let repo_root =
  lazy
    (let rec up dir n =
       if n > 6 then Alcotest.fail "could not locate repo root from cwd"
       else if Sys.file_exists (Filename.concat dir "lib/sinfonia/mtx.ml") then dir
       else up (Filename.dirname dir) (n + 1)
     in
     up (Sys.getcwd ()) 0)

let pp_diags diags =
  String.concat "\n"
    (List.map (fun d -> Format.asprintf "%a" Lint.Diag.pp d) diags)

let test_fixture_selftest () =
  match Lint.Engine.check_fixtures fixtures_dir with
  | [] -> ()
  | failures -> Alcotest.fail (String.concat "\n" failures)

(* The self-test checks (rule, line) sets per fixture; this pins the
   exact anchors of one bad fixture so a matcher that drifts to a
   different node of the same construct is caught even if it stays on
   the same line count. *)
let test_fixture_anchors () =
  let src =
    Lint.Src_file.load ~rel:"bad_crashed_swallow.ml"
      (Filename.concat fixtures_dir "bad_crashed_swallow.ml")
  in
  let found =
    Lint.Engine.lint_source ~ignore_scope:true ~rules:Lint.Rules.all src
    |> List.map (fun (d : Lint.Diag.t) -> (d.Lint.Diag.rule, d.Lint.Diag.line))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "anchors"
    [
      ("crashed-swallow", 7);
      ("crashed-swallow", 11);
      ("crashed-swallow", 17);
      ("crashed-swallow", 21);
    ]
    found

let repo_result =
  lazy
    (let root = Lazy.force repo_root in
     Lint.Engine.lint_files (Lint.Engine.expand_targets ~root [ "lib"; "bin"; "test" ]))

let test_repo_clean () =
  let result = Lazy.force repo_result in
  (match result.Lint.Engine.parse_errors with
  | [] -> ()
  | errs ->
      Alcotest.fail
        (String.concat "\n" (List.map (fun (rel, m) -> rel ^ ": " ^ m) errs)));
  (match Lint.Engine.unsuppressed result with
  | [] -> ()
  | live -> Alcotest.fail ("repo has unsuppressed findings:\n" ^ pp_diags live));
  (* Guards against the walk silently scanning nothing (wrong root)
     and against suppressions being dropped wholesale. *)
  check Alcotest.bool "scanned most of the tree" true
    (result.Lint.Engine.files_scanned >= 50);
  check Alcotest.bool "suppressions survive" true
    (Lint.Engine.suppressed_count result >= 4)

(* Falsifiability: the same seeded-bad file flips from findings to
   silence when (and only when) its rule is disabled. *)
let test_disable_silences_rule () =
  let targets =
    [
      ( Filename.concat fixtures_dir "bad_nondet_iteration.ml",
        "lib/sinfonia/seeded.ml" );
    ]
  in
  let on = Lint.Engine.lint_files targets in
  check Alcotest.bool "rule fires on seeded violation" true
    (List.length (Lint.Engine.unsuppressed on) > 0);
  let rules =
    List.filter (fun (r : Lint.Rules.t) -> r.Lint.Rules.id <> "nondet-iteration") Lint.Rules.all
  in
  let off = Lint.Engine.lint_files ~rules targets in
  check Alcotest.int "disabled rule is silent" 0
    (List.length (Lint.Engine.unsuppressed off))

let test_suppression_window () =
  let src =
    Lint.Src_file.load ~rel:"good_suppressed.ml"
      (Filename.concat fixtures_dir "good_suppressed.ml")
  in
  let allowed rule line = Lint.Src_file.allowed src ~rule ~line in
  check Alcotest.bool "line after the directive" true (allowed "nondet-iteration" 9);
  check Alcotest.bool "window does not reach above" false (allowed "nondet-iteration" 7);
  check Alcotest.bool "window ends one line after" false (allowed "nondet-iteration" 10);
  check Alcotest.bool "trailing same-line directive" true (allowed "wallclock-rng" 11);
  check Alcotest.bool "directive names only its rule" false (allowed "crashed-swallow" 9);
  check Alcotest.bool "allow-file covers everywhere" true (allowed "stringly-metrics" 13)

let test_json_report () =
  let result = Lazy.force repo_result in
  let report = Lint.Engine.to_json result in
  let parsed = Obs.Json.parse (Obs.Json.to_string report) in
  check Alcotest.bool "report round-trips through the codec" true
    (Obs.Json.equal report parsed);
  let int_member key =
    match Obs.Json.member key parsed with
    | Some (Obs.Json.Int i) -> i
    | _ -> Alcotest.fail ("missing int member " ^ key)
  in
  check Alcotest.int "rules_run" (List.length Lint.Rules.all) (int_member "rules_run");
  check Alcotest.int "findings" 0 (int_member "findings");
  check Alcotest.int "suppressions" (Lint.Engine.suppressed_count result)
    (int_member "suppressions");
  match Obs.Json.member "rules" parsed with
  | Some (Obs.Json.List rules) ->
      check Alcotest.int "per-rule entries" (List.length Lint.Rules.all) (List.length rules)
  | _ -> Alcotest.fail "missing rules list"

let () =
  Alcotest.run "lint"
    [
      ( "engine",
        [
          Alcotest.test_case "fixture self-test" `Quick test_fixture_selftest;
          Alcotest.test_case "fixture anchors" `Quick test_fixture_anchors;
          Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
          Alcotest.test_case "disable silences rule" `Quick test_disable_silences_rule;
          Alcotest.test_case "suppression window" `Quick test_suppression_window;
          Alcotest.test_case "json report" `Quick test_json_report;
        ] );
    ]
