(* Tier-1 gate for minuet_lint itself: the fixture self-test, exact
   finding anchors, repo-wide cleanliness, falsifiability (a disabled
   rule goes silent), the suppression window, and the JSON report. *)

let check = Alcotest.check

(* Copied next to the test binary by the dune [deps] glob. *)
let fixtures_dir = "lint_fixtures"

(* Under [dune runtest] the cwd is _build/default/test, and dune has
   copied every library source into _build/default — walk up until the
   tree root shows a known protocol source. *)
let repo_root =
  lazy
    (let rec up dir n =
       if n > 6 then Alcotest.fail "could not locate repo root from cwd"
       else if Sys.file_exists (Filename.concat dir "lib/sinfonia/mtx.ml") then dir
       else up (Filename.dirname dir) (n + 1)
     in
     up (Sys.getcwd ()) 0)

let pp_diags diags =
  String.concat "\n"
    (List.map (fun d -> Format.asprintf "%a" Lint.Diag.pp d) diags)

let test_fixture_selftest () =
  match Lint.Engine.check_fixtures fixtures_dir with
  | [] -> ()
  | failures -> Alcotest.fail (String.concat "\n" failures)

(* The self-test checks (rule, line) sets per fixture; this pins the
   exact anchors of one bad fixture so a matcher that drifts to a
   different node of the same construct is caught even if it stays on
   the same line count. *)
let test_fixture_anchors () =
  let src =
    Lint.Src_file.load ~rel:"bad_crashed_swallow.ml"
      (Filename.concat fixtures_dir "bad_crashed_swallow.ml")
  in
  let found =
    Lint.Engine.lint_source ~ignore_scope:true ~rules:Lint.Rules.all src
    |> List.map (fun (d : Lint.Diag.t) -> (d.Lint.Diag.rule, d.Lint.Diag.line))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "anchors"
    [
      ("crashed-swallow", 7);
      ("crashed-swallow", 11);
      ("crashed-swallow", 17);
      ("crashed-swallow", 21);
    ]
    found

let repo_result =
  lazy
    (let root = Lazy.force repo_root in
     Lint.Engine.lint_files (Lint.Engine.expand_targets ~root [ "lib"; "bin"; "test" ]))

let test_repo_clean () =
  let result = Lazy.force repo_result in
  (match result.Lint.Engine.parse_errors with
  | [] -> ()
  | errs ->
      Alcotest.fail
        (String.concat "\n" (List.map (fun (rel, m) -> rel ^ ": " ^ m) errs)));
  (match Lint.Engine.unsuppressed result with
  | [] -> ()
  | live -> Alcotest.fail ("repo has unsuppressed findings:\n" ^ pp_diags live));
  (* Guards against the walk silently scanning nothing (wrong root)
     and against suppressions being dropped wholesale. *)
  check Alcotest.bool "scanned most of the tree" true
    (result.Lint.Engine.files_scanned >= 50);
  check Alcotest.bool "suppressions survive" true
    (Lint.Engine.suppressed_count result >= 4)

(* Falsifiability: the same seeded-bad file flips from findings to
   silence when (and only when) its rule is disabled. *)
let test_disable_silences_rule () =
  let targets =
    [
      ( Filename.concat fixtures_dir "bad_nondet_iteration.ml",
        "lib/sinfonia/seeded.ml" );
    ]
  in
  let on = Lint.Engine.lint_files targets in
  check Alcotest.bool "rule fires on seeded violation" true
    (List.length (Lint.Engine.unsuppressed on) > 0);
  let rules =
    List.filter (fun (r : Lint.Rules.t) -> r.Lint.Rules.id <> "nondet-iteration") Lint.Rules.all
  in
  let off = Lint.Engine.lint_files ~rules targets in
  check Alcotest.int "disabled rule is silent" 0
    (List.length (Lint.Engine.unsuppressed off))

(* ------------------------------------------------------------------ *)
(* Interprocedural phase                                                *)
(* ------------------------------------------------------------------ *)

(* The xmod fixture pair, loaded at their in-tree rels so scoping and
   cross-file resolution behave exactly as in a whole-repo run. *)
let xmod_srcs () =
  List.map
    (fun rel ->
      Lint.Src_file.load ~rel (Filename.concat (Filename.concat fixtures_dir "xmod") rel))
    [ "lib/sinfonia/xm_entry.ml"; "lib/util/xm_leak.ml" ]

(* Both the [open Xm_leak] unqualified call and the [module L =
   Xm_leak] aliased call must resolve to the same cross-file target. *)
let test_xmod_resolution () =
  let ip = Lint.Interproc.build ~honor_scope:true (List.map Lint.Summary.of_src (xmod_srcs ())) in
  let entry_rel = "lib/sinfonia/xm_entry.ml" in
  let target = Lint.Summary.fn_id ~rel:"lib/util/xm_leak.ml" "dump" in
  List.iter
    (fun local ->
      match Lint.Interproc.fn ip (Lint.Summary.fn_id ~rel:entry_rel local) with
      | None -> Alcotest.fail ("missing summary for " ^ local)
      | Some fn -> (
          match Lint.Summary.calls_of fn with
          | [ call ] ->
              check (Alcotest.option Alcotest.string)
                (local ^ " resolves cross-file")
                (Some target)
                (Lint.Interproc.resolve_from ip ~rel:entry_rel call)
          | calls ->
              Alcotest.fail
                (Printf.sprintf "%s: expected one call, summarized %d" local
                   (List.length calls))))
    [ "report"; "audit" ]

(* Feeding the files in either order must produce byte-identical
   diagnostics and a sorted function list — the summary and fixpoint
   stages are order-independent by construction. *)
let test_deterministic_order () =
  let diags srcs =
    fst (Lint.Engine.lint_program ~rules:Lint.Rules.all srcs)
    |> List.map (fun (d : Lint.Diag.t) -> (d.Lint.Diag.rule, d.Lint.Diag.path, d.Lint.Diag.line))
  in
  let fwd = xmod_srcs () in
  check
    (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.string Alcotest.int))
    "file order does not leak into diagnostics" (diags fwd)
    (diags (List.rev fwd));
  let ip = Lint.Interproc.build (List.map Lint.Summary.of_src fwd) in
  let ids =
    List.map (fun (f : Lint.Summary.fn) -> f.Lint.Summary.fn_id) (Lint.Interproc.functions ip)
  in
  check
    (Alcotest.list Alcotest.string)
    "functions visited in sorted order"
    (List.sort compare ids) ids

(* A mutually-recursive cycle must still reach a fixpoint (well under
   the pass cap) and propagate the source to every cycle member. *)
let test_fixpoint_recursion () =
  let path = Filename.temp_file "lint_rec_probe" ".ml" in
  let oc = open_out path in
  output_string oc
    "let rec ping tbl n =\n\
    \  if n = 0 then Hashtbl.iter (fun _ _ -> ()) tbl else pong tbl (n - 1)\n\
     and pong tbl n = ping tbl (n - 1)\n";
  close_out oc;
  let rel = "lib/sim/rec_probe.ml" in
  let src = Lint.Src_file.load ~rel path in
  Sys.remove path;
  let ip = Lint.Interproc.build ~honor_scope:false [ Lint.Summary.of_src src ] in
  let stats = Lint.Interproc.stats ip in
  check Alcotest.bool "fixpoint converged below the cap" true
    (stats.Lint.Interproc.st_reach_passes < 64);
  List.iter
    (fun local ->
      let reach = Lint.Interproc.reach_of ip (Lint.Summary.fn_id ~rel local) in
      check Alcotest.bool (local ^ " reaches the cycle's nondet source") true
        (List.exists
           (fun (r : Lint.Interproc.reach) -> r.Lint.Interproc.r_what = "Hashtbl.iter")
           reach))
    [ "ping"; "pong" ]

(* Falsifiability for a Global rule: same shape as the Expr-rule test,
   seeded at a protocol path so real scoping applies. *)
let test_disable_silences_global_rule () =
  let targets =
    [
      ( Filename.concat fixtures_dir "bad_blocking_under_lock.ml",
        "lib/sinfonia/seeded.ml" );
    ]
  in
  let on = Lint.Engine.lint_files targets in
  check Alcotest.bool "blocking-under-lock fires on seeded violation" true
    (List.exists
       (fun (d : Lint.Diag.t) -> d.Lint.Diag.rule = "blocking-under-lock")
       (Lint.Engine.unsuppressed on));
  let rules =
    List.filter
      (fun (r : Lint.Rules.t) -> r.Lint.Rules.id <> "blocking-under-lock")
      Lint.Rules.all
  in
  let off = Lint.Engine.lint_files ~rules targets in
  check Alcotest.int "disabled global rule is silent" 0
    (List.length (Lint.Engine.unsuppressed off))

let test_suppression_window () =
  let src =
    Lint.Src_file.load ~rel:"good_suppressed.ml"
      (Filename.concat fixtures_dir "good_suppressed.ml")
  in
  let allowed rule line = Lint.Src_file.allowed src ~rule ~line in
  check Alcotest.bool "line after the directive" true (allowed "nondet-iteration" 9);
  check Alcotest.bool "window does not reach above" false (allowed "nondet-iteration" 7);
  check Alcotest.bool "window ends one line after" false (allowed "nondet-iteration" 10);
  check Alcotest.bool "trailing same-line directive" true (allowed "wallclock-rng" 11);
  check Alcotest.bool "directive names only its rule" false (allowed "crashed-swallow" 9);
  check Alcotest.bool "allow-file covers everywhere" true (allowed "stringly-metrics" 13)

let test_json_report () =
  let result = Lazy.force repo_result in
  let report = Lint.Engine.to_json result in
  let parsed = Obs.Json.parse (Obs.Json.to_string report) in
  check Alcotest.bool "report round-trips through the codec" true
    (Obs.Json.equal report parsed);
  let int_member key =
    match Obs.Json.member key parsed with
    | Some (Obs.Json.Int i) -> i
    | _ -> Alcotest.fail ("missing int member " ^ key)
  in
  check Alcotest.int "rules_run" (List.length Lint.Rules.all) (int_member "rules_run");
  check Alcotest.int "findings" 0 (int_member "findings");
  check Alcotest.int "suppressions" (Lint.Engine.suppressed_count result)
    (int_member "suppressions");
  (match Obs.Json.member "rules" parsed with
  | Some (Obs.Json.List rules) ->
      check Alcotest.int "per-rule entries" (List.length Lint.Rules.all) (List.length rules)
  | _ -> Alcotest.fail "missing rules list");
  (match Obs.Json.member "interproc" parsed with
  | Some ip_json -> (
      match Obs.Json.member "functions" ip_json with
      | Some (Obs.Json.Int n) ->
          check Alcotest.bool "interproc saw the repo's functions" true (n > 100)
      | _ -> Alcotest.fail "missing interproc.functions")
  | None -> Alcotest.fail "missing interproc block");
  match Obs.Json.member "wall_ms" parsed with
  | Some (Obs.Json.Float _) -> ()
  | _ -> Alcotest.fail "missing wall_ms"

let () =
  Alcotest.run "lint"
    [
      ( "engine",
        [
          Alcotest.test_case "fixture self-test" `Quick test_fixture_selftest;
          Alcotest.test_case "fixture anchors" `Quick test_fixture_anchors;
          Alcotest.test_case "repo lints clean" `Quick test_repo_clean;
          Alcotest.test_case "disable silences rule" `Quick test_disable_silences_rule;
          Alcotest.test_case "suppression window" `Quick test_suppression_window;
          Alcotest.test_case "cross-module resolution" `Quick test_xmod_resolution;
          Alcotest.test_case "deterministic order" `Quick test_deterministic_order;
          Alcotest.test_case "fixpoint on recursion" `Quick test_fixpoint_recursion;
          Alcotest.test_case "disable silences global rule" `Quick
            test_disable_silences_global_rule;
          Alcotest.test_case "json report" `Quick test_json_report;
        ] );
    ]
