(* Tests for the distributed multiversion B-tree: layout, allocation,
   operations, copy-on-write snapshots, concurrency, and both
   concurrency-control modes. *)

let check = Alcotest.check

open Btree
module Objref = Dyntxn.Objref
module Txn = Dyntxn.Txn
module Objcache = Dyntxn.Objcache
module Cluster = Sinfonia.Cluster

let key i = Printf.sprintf "k%06d" i

let value i = Printf.sprintf "v%d" i

let small_layout = Layout.make ~node_size:512 ~max_slots:4096 ~max_trees:4 ~max_snapshots:256 ()

type env = {
  cluster : Cluster.t;
  layout : Layout.t;
  shared : Node_alloc.Shared.t;
  cache : Objcache.t;
}

let make_env ?(n = 3) () =
  let layout = small_layout in
  let config =
    { Sinfonia.Config.default with heap_capacity = Layout.heap_capacity_needed layout }
  in
  let cluster = Cluster.create ~config ~n () in
  let shared = Node_alloc.Shared.create ~n_memnodes:n in
  { cluster; layout; shared; cache = Objcache.create () }

let make_tree ?(mode = Ops.Dirty_traversal) ?(max_keys = 4) ?(tree_id = 0) ?cache env =
  let alloc = Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared () in
  Ops.make_tree ~mode ~max_keys_leaf:max_keys ~max_keys_internal:max_keys ~cluster:env.cluster
    ~layout:env.layout ~tree_id ~alloc
    ~cache:(Option.value cache ~default:env.cache)
    ()

let with_tree ?n ?mode ?max_keys f =
  Sim.run (fun () ->
      let env = make_env ?n () in
      let tree = make_tree ?mode ?max_keys env in
      Ops.Linear.init_tree tree;
      f env tree)

let tip tree txn = Ops.Linear.tip tree txn

let get tree k = Ops.get tree ~vctx_of:(tip tree) k

let put tree k v = Ops.put tree ~vctx_of:(tip tree) k v

let remove tree k = Ops.remove tree ~vctx_of:(tip tree) k

let scan tree ~from ~count = Ops.scan tree ~vctx_of:(tip tree) ~from ~count

(* Read the current tip (sid, root) with a throwaway transaction. *)
let read_tip tree =
  let txn = Txn.begin_ (Ops.cluster tree) in
  let r = Ops.Linear.read_tip tree txn in
  (match Txn.commit txn with _ -> ());
  r

let audit_tip tree =
  let sid, root = read_tip tree in
  Ops.audit tree ~sid ~root

(* ------------------------------------------------------------------ *)
(* Layout                                                               *)
(* ------------------------------------------------------------------ *)

let test_layout_regions_disjoint () =
  let l = small_layout in
  (* Metadata offsets are all below the slot region. *)
  let offs =
    [
      Layout.tip_id_off l ~tree:0;
      Layout.tip_root_off l ~tree:0;
      Layout.lowest_sid_off l ~tree:0;
      Layout.tip_id_off l ~tree:3;
      Layout.global_sid_off l ~tree:0;
      Layout.global_sid_off l ~tree:3;
      Layout.catalog_entry_off l ~tree:0 ~sid:0L;
      Layout.catalog_entry_off l ~tree:3 ~sid:255L;
      Layout.alloc_ptr_off l;
    ]
  in
  let sorted = List.sort_uniq Int.compare offs in
  check Alcotest.int "all distinct" (List.length offs) (List.length sorted);
  List.iter
    (fun off -> check Alcotest.bool "below slots" true (off < Layout.slot_base l))
    offs;
  check Alcotest.bool "heap fits" true
    (Layout.heap_capacity_needed l > Layout.slot_off l ~index:(l.Layout.max_slots - 1))

let test_layout_slot_mapping () =
  let l = small_layout in
  for i = 0 to 10 do
    let off = Layout.slot_off l ~index:i in
    check Alcotest.int "roundtrip" i (Layout.slot_index l ~off);
    check Alcotest.bool "is_slot" true (Layout.is_slot_off l ~off);
    check Alcotest.bool "not slot" false (Layout.is_slot_off l ~off:(off + 1))
  done;
  (match Layout.slot_off l ~index:l.Layout.max_slots with
  | (_ : int) -> Alcotest.fail "out of range accepted"
  | exception Invalid_argument _ -> ());
  (* Sequence-table entries are distinct per slot and below slot_base. *)
  let e0 = Layout.seq_entry_off l (Sinfonia.Address.make ~node:0 ~off:(Layout.slot_off l ~index:0)) in
  let e1 = Layout.seq_entry_off l (Sinfonia.Address.make ~node:0 ~off:(Layout.slot_off l ~index:1)) in
  check Alcotest.bool "distinct entries" true (e0 <> e1);
  check Alcotest.bool "entry below slots" true (e0 < Layout.slot_base l && e1 < Layout.slot_base l)

(* ------------------------------------------------------------------ *)
(* Allocator                                                            *)
(* ------------------------------------------------------------------ *)

let test_alloc_unique_and_round_robin () =
  Sim.run (fun () ->
      let env = make_env ~n:3 () in
      let alloc = Node_alloc.create ~chunk:4 ~cluster:env.cluster ~layout:env.layout ~shared:env.shared () in
      let refs = List.init 30 (fun _ -> Node_alloc.alloc alloc) in
      let uniq = List.sort_uniq Objref.compare refs in
      check Alcotest.int "all distinct" 30 (List.length uniq);
      let per_node = Array.make 3 0 in
      List.iter (fun r -> per_node.(Objref.node r) <- per_node.(Objref.node r) + 1) refs;
      Array.iter (fun c -> check Alcotest.int "balanced" 10 c) per_node)

let test_alloc_two_proxies_disjoint () =
  Sim.run (fun () ->
      let env = make_env ~n:2 () in
      let a1 = Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared () in
      let a2 = Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared () in
      let r1 = List.init 50 (fun _ -> Node_alloc.alloc a1) in
      let r2 = List.init 50 (fun _ -> Node_alloc.alloc a2) in
      let all = List.sort_uniq Objref.compare (r1 @ r2) in
      check Alcotest.int "no overlap between proxies" 100 (List.length all))

let test_alloc_free_reuse () =
  Sim.run (fun () ->
      let env = make_env ~n:1 () in
      let alloc = Node_alloc.create ~cluster:env.cluster ~layout:env.layout ~shared:env.shared () in
      let r = Node_alloc.alloc alloc in
      Node_alloc.free alloc r;
      check Alcotest.int "free list" 1 (Node_alloc.Shared.free_count env.shared ~node:0))

let test_alloc_exhaustion () =
  Sim.run (fun () ->
      let layout = Layout.make ~node_size:512 ~max_slots:4 ~max_trees:4 ~max_snapshots:16 () in
      let config =
        { Sinfonia.Config.default with heap_capacity = Layout.heap_capacity_needed layout }
      in
      let cluster = Cluster.create ~config ~n:1 () in
      let shared = Node_alloc.Shared.create ~n_memnodes:1 in
      let alloc = Node_alloc.create ~chunk:2 ~cluster ~layout ~shared () in
      for _ = 1 to 4 do
        ignore (Node_alloc.alloc alloc)
      done;
      match Node_alloc.alloc alloc with
      | (_ : Objref.t) -> Alcotest.fail "expected exhaustion"
      | exception Node_alloc.Out_of_slots 0 -> ())

(* ------------------------------------------------------------------ *)
(* Basic operations                                                     *)
(* ------------------------------------------------------------------ *)

let test_empty_tree () =
  with_tree (fun _env tree ->
      check (Alcotest.option Alcotest.string) "miss" None (get tree (key 1));
      check Alcotest.bool "remove miss" false (remove tree (key 1));
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "empty scan" [] (scan tree ~from:"" ~count:10);
      check Alcotest.int "audit empty" 0 (List.length (audit_tip tree)))

let test_put_get_single () =
  with_tree (fun _env tree ->
      put tree (key 1) "hello";
      check (Alcotest.option Alcotest.string) "hit" (Some "hello") (get tree (key 1));
      check (Alcotest.option Alcotest.string) "miss" None (get tree (key 2)))

let test_put_overwrite () =
  with_tree (fun _env tree ->
      put tree (key 1) "first";
      put tree (key 1) "second";
      check (Alcotest.option Alcotest.string) "overwritten" (Some "second") (get tree (key 1));
      check Alcotest.int "one entry" 1 (List.length (audit_tip tree)))

let test_many_inserts_with_splits () =
  with_tree ~max_keys:4 (fun _env tree ->
      let n = 300 in
      for i = 1 to n do
        put tree (key i) (value i)
      done;
      (* Every key is retrievable. *)
      for i = 1 to n do
        check (Alcotest.option Alcotest.string) (key i) (Some (value i)) (get tree (key i))
      done;
      (* Structure is a valid B-tree holding exactly the model. *)
      let entries = audit_tip tree in
      check Alcotest.int "entry count" n (List.length entries);
      check Alcotest.bool "splits happened" true
        (Sim.Metrics.counter_value (Cluster.metrics (Ops.cluster tree)) "btree.splits" > 0);
      check Alcotest.bool "root split happened" true
        (Sim.Metrics.counter_value (Cluster.metrics (Ops.cluster tree)) "btree.root_splits" > 0))

let test_random_order_inserts () =
  with_tree ~max_keys:4 (fun _env tree ->
      let rng = Sim.Rng.create 7 in
      let keys = Array.init 200 key in
      Sim.Rng.shuffle rng keys;
      Array.iter (fun k -> put tree k ("=" ^ k)) keys;
      let entries = audit_tip tree in
      check Alcotest.int "count" 200 (List.length entries);
      List.iter (fun (k, v) -> check Alcotest.string "value" ("=" ^ k) v) entries)

let test_remove () =
  with_tree ~max_keys:4 (fun _env tree ->
      for i = 1 to 50 do
        put tree (key i) (value i)
      done;
      for i = 1 to 50 do
        if i mod 2 = 0 then check Alcotest.bool "removed" true (remove tree (key i))
      done;
      check Alcotest.bool "already removed" false (remove tree (key 2));
      for i = 1 to 50 do
        let expected = if i mod 2 = 0 then None else Some (value i) in
        check (Alcotest.option Alcotest.string) (key i) expected (get tree (key i))
      done;
      check Alcotest.int "audit count" 25 (List.length (audit_tip tree)))

let test_scan_ranges () =
  with_tree ~max_keys:4 (fun _env tree ->
      for i = 0 to 99 do
        put tree (key i) (value i)
      done;
      (* Scan spanning many leaves. *)
      let r = scan tree ~from:(key 10) ~count:25 in
      check Alcotest.int "count" 25 (List.length r);
      List.iteri
        (fun j (k, v) ->
          check Alcotest.string "key order" (key (10 + j)) k;
          check Alcotest.string "value" (value (10 + j)) v)
        r;
      (* Scan from a key that is absent starts at the successor. *)
      let r = scan tree ~from:(key 10 ^ "x") ~count:3 in
      check (Alcotest.list Alcotest.string) "successor start"
        [ key 11; key 12; key 13 ]
        (List.map fst r);
      (* Scan beyond the end is truncated. *)
      let r = scan tree ~from:(key 95) ~count:100 in
      check Alcotest.int "truncated" 5 (List.length r);
      (* Scan of the whole tree. *)
      let r = scan tree ~from:"" ~count:1000 in
      check Alcotest.int "full" 100 (List.length r))

(* ------------------------------------------------------------------ *)
(* Model-based randomized test                                          *)
(* ------------------------------------------------------------------ *)

let test_model_random_ops () =
  with_tree ~max_keys:4 (fun _env tree ->
      let module M = Map.Make (String) in
      let rng = Sim.Rng.create 99 in
      let model = ref M.empty in
      for step = 1 to 600 do
        let k = key (Sim.Rng.int rng 80) in
        match Sim.Rng.int rng 4 with
        | 0 | 1 ->
            let v = Printf.sprintf "s%d" step in
            put tree k v;
            model := M.add k v !model
        | 2 ->
            let removed = remove tree k in
            check Alcotest.bool "remove agrees" (M.mem k !model) removed;
            model := M.remove k !model
        | _ ->
            check
              (Alcotest.option Alcotest.string)
              "get agrees" (M.find_opt k !model) (get tree k)
      done;
      let entries = audit_tip tree in
      check Alcotest.bool "final state matches model" true (M.bindings !model = entries))

let test_scan_matches_model_random () =
  (* Random scans against a sorted-map model after random inserts. *)
  with_tree ~max_keys:4 (fun _env tree ->
      let module M = Map.Make (String) in
      let rng = Sim.Rng.create 31 in
      let model = ref M.empty in
      for i = 0 to 149 do
        let k = key (Sim.Rng.int rng 400) in
        let v = string_of_int i in
        put tree k v;
        model := M.add k v !model
      done;
      for _ = 1 to 40 do
        let from = key (Sim.Rng.int rng 450) in
        let count = 1 + Sim.Rng.int rng 30 in
        let got = scan tree ~from ~count in
        let expected =
          M.bindings !model
          |> List.filter (fun (k, _) -> Bkey.compare k from >= 0)
          |> List.filteri (fun i _ -> i < count)
        in
        if got <> expected then Alcotest.fail "scan diverged from model"
      done)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let create_snapshot tree =
  let txn = Txn.begin_ (Ops.cluster tree) in
  let sid, root = Ops.Linear.create_snapshot tree txn in
  match Txn.commit ~blocking:true txn with
  | Txn.Committed -> (sid, root)
  | _ -> Alcotest.fail "snapshot creation failed"

let test_snapshot_isolation () =
  with_tree ~max_keys:4 (fun _env tree ->
      for i = 0 to 29 do
        put tree (key i) "old"
      done;
      let sid, root = create_snapshot tree in
      (* Mutate the tip: updates, inserts and removes. *)
      for i = 0 to 29 do
        if i mod 3 = 0 then put tree (key i) "new"
        else if i mod 3 = 1 then ignore (remove tree (key i))
      done;
      for i = 100 to 120 do
        put tree (key i) "new"
      done;
      (* The snapshot still shows the old state... *)
      let snap_vctx txn = Ops.Linear.at_snapshot tree ~sid ~root |> fun v -> ignore txn; v in
      for i = 0 to 29 do
        check (Alcotest.option Alcotest.string) "snapshot value" (Some "old")
          (Ops.get tree ~vctx_of:snap_vctx (key i))
      done;
      check (Alcotest.option Alcotest.string) "no new key in snapshot" None
        (Ops.get tree ~vctx_of:snap_vctx (key 100));
      (* ...and audits cleanly with exactly the old contents. *)
      let snap_entries = Ops.audit tree ~sid ~root in
      check Alcotest.int "snapshot count" 30 (List.length snap_entries);
      List.iter (fun (_, v) -> check Alcotest.string "old value" "old" v) snap_entries;
      (* The tip reflects all mutations. *)
      check (Alcotest.option Alcotest.string) "tip updated" (Some "new") (get tree (key 0));
      check (Alcotest.option Alcotest.string) "tip removed" None (get tree (key 1));
      check (Alcotest.option Alcotest.string) "tip inserted" (Some "new") (get tree (key 100));
      check Alcotest.bool "copies happened" true
        (Sim.Metrics.counter_value (Cluster.metrics (Ops.cluster tree)) "btree.cow" > 0))

let test_snapshot_scan_stable () =
  with_tree ~max_keys:4 (fun _env tree ->
      for i = 0 to 49 do
        put tree (key i) "s0"
      done;
      let sid, root = create_snapshot tree in
      for i = 0 to 49 do
        put tree (key i) "s1"
      done;
      let snap_vctx _txn = Ops.Linear.at_snapshot tree ~sid ~root in
      let r = Ops.scan tree ~vctx_of:snap_vctx ~from:"" ~count:100 in
      check Alcotest.int "snapshot scan count" 50 (List.length r);
      List.iter (fun (_, v) -> check Alcotest.string "stable" "s0" v) r)

let test_multiple_snapshots_chain () =
  with_tree ~max_keys:4 (fun _env tree ->
      let snaps = ref [] in
      for round = 0 to 4 do
        for i = 0 to 19 do
          put tree (key i) (Printf.sprintf "round%d" round)
        done;
        snaps := create_snapshot tree :: !snaps
      done;
      (* Each snapshot sees exactly its round's values. *)
      List.iteri
        (fun rev_idx (sid, root) ->
          let round = 4 - rev_idx in
          let entries = Ops.audit tree ~sid ~root in
          check Alcotest.int "count" 20 (List.length entries);
          List.iter
            (fun (_, v) -> check Alcotest.string "round value" (Printf.sprintf "round%d" round) v)
            entries)
        !snaps)

let test_snapshot_ids_monotonic () =
  with_tree (fun _env tree ->
      put tree (key 1) "x";
      let s1, _ = create_snapshot tree in
      let s2, _ = create_snapshot tree in
      let s3, _ = create_snapshot tree in
      check Alcotest.bool "monotonic" true (Int64.compare s1 s2 < 0 && Int64.compare s2 s3 < 0))

(* ------------------------------------------------------------------ *)
(* Concurrency                                                          *)
(* ------------------------------------------------------------------ *)

let test_concurrent_disjoint_inserts () =
  with_tree ~n:4 ~max_keys:4 (fun env tree0 ->
      (* Several proxies, each with its own cache and allocator, insert
         disjoint key ranges concurrently. *)
      let proxies =
        List.init 4 (fun p -> (p, make_tree env ~cache:(Objcache.create ()) ~max_keys:4))
      in
      ignore tree0;
      let done_count = ref 0 in
      List.iter
        (fun (p, tree) ->
          Sim.spawn (fun () ->
              for i = 0 to 49 do
                put tree (key ((p * 1000) + i)) (Printf.sprintf "p%d" p)
              done;
              incr done_count))
        proxies;
      Sim.delay 3600.0;
      check Alcotest.int "all proxies finished" 4 !done_count;
      let entries = audit_tip tree0 in
      check Alcotest.int "all inserted" 200 (List.length entries))

let test_concurrent_same_key_updates () =
  with_tree ~n:2 ~max_keys:4 (fun env tree0 ->
      put tree0 (key 0) "init";
      let proxies = List.init 3 (fun p -> (p, make_tree env ~cache:(Objcache.create ()))) in
      let done_count = ref 0 in
      List.iter
        (fun (p, tree) ->
          Sim.spawn (fun () ->
              for i = 1 to 20 do
                put tree (key 0) (Printf.sprintf "p%d-%d" p i)
              done;
              incr done_count))
        proxies;
      Sim.delay 3600.0;
      check Alcotest.int "all finished" 3 !done_count;
      (* The final value is the last committed write of some proxy. *)
      match get tree0 (key 0) with
      | Some v -> check Alcotest.bool "suffix -20" true (String.length v > 3 && String.sub v (String.length v - 3) 3 = "-20")
      | None -> Alcotest.fail "key vanished")

let test_concurrent_updates_with_snapshot () =
  with_tree ~n:3 ~max_keys:4 (fun env tree0 ->
      for i = 0 to 39 do
        put tree0 (key i) "base"
      done;
      let writer = make_tree env ~cache:(Objcache.create ()) in
      let snapshot = ref None in
      let writes_done = ref false in
      Sim.spawn (fun () ->
          for i = 0 to 39 do
            put writer (key i) "changed"
          done;
          writes_done := true);
      Sim.spawn (fun () ->
          Sim.delay 0.001;
          snapshot := Some (create_snapshot tree0));
      Sim.delay 3600.0;
      check Alcotest.bool "writes done" true !writes_done;
      match !snapshot with
      | None -> Alcotest.fail "snapshot not created"
      | Some (sid, root) ->
          (* The snapshot is a consistent prefix: every value is either
             base or changed, and the set of keys is intact. *)
          let entries = Ops.audit tree0 ~sid ~root in
          check Alcotest.int "snapshot intact" 40 (List.length entries);
          List.iter
            (fun (_, v) ->
              check Alcotest.bool "consistent value" true (v = "base" || v = "changed"))
            entries;
          (* The tip has all changes. *)
          List.iter
            (fun (_, v) -> check Alcotest.string "tip changed" "changed" v)
            (audit_tip tree0))

(* ------------------------------------------------------------------ *)
(* Baseline (validated) mode                                            *)
(* ------------------------------------------------------------------ *)

let test_validated_mode_basic () =
  with_tree ~mode:Ops.Validated_traversal ~max_keys:4 (fun _env tree ->
      for i = 0 to 99 do
        put tree (key i) (value i)
      done;
      for i = 0 to 99 do
        check (Alcotest.option Alcotest.string) (key i) (Some (value i)) (get tree (key i))
      done;
      check Alcotest.int "audit" 100 (List.length (audit_tip tree)))

let test_validated_mode_detects_stale_internal () =
  (* Two proxies in baseline mode; one splits internal nodes, the other
     (with a now-stale cache) must not commit against them. *)
  Sim.run (fun () ->
      let env = make_env ~n:2 () in
      let t1 = make_tree env ~mode:Ops.Validated_traversal ~cache:(Objcache.create ()) in
      Ops.Linear.init_tree t1;
      let t2 = make_tree env ~mode:Ops.Validated_traversal ~cache:(Objcache.create ()) in
      (* Warm both proxies. *)
      for i = 0 to 20 do
        put t1 (key i) "a"
      done;
      check (Alcotest.option Alcotest.string) "t2 sees" (Some "a") (get t2 (key 0));
      (* t1 causes splits; t2 keeps operating correctly despite its
         stale cache (validation + retry). *)
      for i = 21 to 120 do
        put t1 (key i) "a"
      done;
      for i = 0 to 120 do
        check (Alcotest.option Alcotest.string) "t2 consistent" (Some "a") (get t2 (key i))
      done)

let test_modes_agree () =
  (* The same operation sequence produces the same logical contents in
     both modes. *)
  let run mode =
    let result = ref [] in
    Sim.run (fun () ->
        let env = make_env ~n:2 () in
        let tree = make_tree env ~mode ~max_keys:4 in
        Ops.Linear.init_tree tree;
        let rng = Sim.Rng.create 5 in
        for _ = 1 to 300 do
          let k = key (Sim.Rng.int rng 60) in
          match Sim.Rng.int rng 3 with
          | 0 | 1 -> put tree k ("v" ^ k)
          | _ -> ignore (remove tree k)
        done;
        result := audit_tip tree);
    !result
  in
  check Alcotest.bool "identical contents" true
    (run Ops.Dirty_traversal = run Ops.Validated_traversal)

(* ------------------------------------------------------------------ *)
(* The paper's anomaly scenarios (Figs. 2 and 3)                        *)
(* ------------------------------------------------------------------ *)

let test_fig2_no_unnecessary_abort_with_dirty_traversals () =
  (* Fig. 2: a sibling split updates the parent. In the baseline, a
     concurrent operation that traversed the parent must abort even
     though its leaf is untouched. With dirty traversals the parent is
     not validated, so the operation commits without extra retries. *)
  let run mode =
    let result = ref 0 in
    Sim.run (fun () ->
        let env = make_env ~n:2 () in
        let t1 = make_tree env ~mode ~cache:(Objcache.create ()) in
        Ops.Linear.init_tree t1;
        let t2 = make_tree env ~mode ~cache:(Objcache.create ()) in
        (* Grow a two-level tree and warm both proxies. *)
        for i = 0 to 29 do
          put t1 (key (2 * i)) "x"
        done;
        check (Alcotest.option Alcotest.string) "warm" (Some "x") (get t2 (key 0));
        let before =
          Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.op_retries"
        in
        (* Proxy 1 splits a leaf on the left side of the tree (updating
           the shared parent); proxy 2 updates an untouched right-side
           leaf concurrently. *)
        Sim.spawn (fun () ->
            for i = 0 to 6 do
              put t1 (key (2 * i + 1)) "split-driver"
            done);
        Sim.spawn (fun () ->
            for _ = 1 to 6 do
              put t2 (key 58) "victim"
            done);
        Sim.delay 60.0;
        check (Alcotest.option Alcotest.string) "victim committed" (Some "victim")
          (get t1 (key 58));
        result :=
          Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.op_retries" - before);
    !result
  in
  let dirty_retries = run Ops.Dirty_traversal in
  (* The scenario must at least never be WORSE for dirty traversals; in
     the common case the baseline pays extra retries. *)
  let baseline_retries = run Ops.Validated_traversal in
  check Alcotest.bool "dirty needs no more retries than baseline" true
    (dirty_retries <= baseline_retries)

let test_fig3_fence_keys_prevent_wrong_leaf () =
  (* Fig. 3: with dirty reads a traversal can land on a stale path. The
     fence keys must force an abort-and-retry rather than a wrong
     answer. We stage it deterministically: proxy 2 caches internal
     nodes, proxy 1 then drives splits that reshape the tree, and proxy
     2 (stale cache) looks up keys that now live elsewhere. *)
  Sim.run (fun () ->
      let env = make_env ~n:2 () in
      let t1 = make_tree env ~cache:(Objcache.create ()) in
      Ops.Linear.init_tree t1;
      let t2 = make_tree env ~cache:(Objcache.create ()) in
      for i = 0 to 39 do
        put t1 (key i) "v0"
      done;
      (* Warm proxy 2's cache over the whole range. *)
      for i = 0 to 39 do
        check (Alcotest.option Alcotest.string) "warm" (Some "v0") (get t2 (key i))
      done;
      (* Reshape: dense inserts split leaves and internal nodes. *)
      for i = 40 to 400 do
        put t1 (key i) "v0"
      done;
      let fence_aborts_before =
        Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.abort.fence"
        + Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.abort.height"
      in
      (* Every stale-cache lookup must still return the right answer. *)
      for i = 0 to 400 do
        check (Alcotest.option Alcotest.string) (key i) (Some "v0") (get t2 (key i))
      done;
      check (Alcotest.option Alcotest.string) "absent key stays absent" None
        (get t2 (key 401));
      let fence_aborts_after =
        Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.abort.fence"
        + Sim.Metrics.counter_value (Cluster.metrics env.cluster) "btree.abort.height"
      in
      (* The safety checks actually fired (the anomaly was reachable and
         was caught), rather than the answers being right by luck. *)
      check Alcotest.bool "safety checks fired" true (fence_aborts_after > fence_aborts_before))

(* ------------------------------------------------------------------ *)
(* Multi-tree transactions                                              *)
(* ------------------------------------------------------------------ *)

let test_multi_tree_ops () =
  Sim.run (fun () ->
      let env = make_env ~n:3 () in
      let t0 = make_tree env ~tree_id:0 in
      let t1 = make_tree env ~tree_id:1 in
      Ops.Linear.init_tree t0;
      Ops.Linear.init_tree t1;
      let vctx_of tree txn = Ops.Linear.tip tree txn in
      Ops.multi_put [ (t0, key 1, "zero"); (t1, key 1, "one") ] ~vctx_of;
      (match Ops.multi_get [ (t0, key 1); (t1, key 1) ] ~vctx_of with
      | [ Some "zero"; Some "one" ] -> ()
      | _ -> Alcotest.fail "multi_get mismatch");
      (* The two trees are independent. *)
      check (Alcotest.option Alcotest.string) "t0 only" None (get t1 (key 2));
      put t0 (key 2) "only-zero";
      check (Alcotest.option Alcotest.string) "t0 has" (Some "only-zero") (get t0 (key 2));
      check (Alcotest.option Alcotest.string) "t1 hasn't" None (get t1 (key 2)))

let test_multi_tree_concurrent_atomicity () =
  (* Writers atomically set (t0[k], t1[k]) to the same tag; readers
     atomically read both and must never observe a mix. *)
  Sim.run (fun () ->
      let env = make_env ~n:3 () in
      let t0 = make_tree env ~tree_id:0 in
      let t1 = make_tree env ~tree_id:1 in
      Ops.Linear.init_tree t0;
      Ops.Linear.init_tree t1;
      let vctx_of tree txn = Ops.Linear.tip tree txn in
      Ops.multi_put [ (t0, key 1, "tag0"); (t1, key 1, "tag0") ] ~vctx_of;
      let k = key 1 in
      let violations = ref 0 in
      let writers_done = ref 0 in
      for w = 1 to 2 do
        Sim.spawn (fun () ->
            for i = 1 to 15 do
              let tag = Printf.sprintf "tag-w%d-%d" w i in
              Ops.multi_put [ (t0, k, tag); (t1, k, tag) ] ~vctx_of
            done;
            incr writers_done)
      done;
      Sim.spawn (fun () ->
          for _ = 1 to 40 do
            (match Ops.multi_get [ (t0, k); (t1, k) ] ~vctx_of with
            | [ Some a; Some b ] -> if not (String.equal a b) then incr violations
            | _ -> incr violations);
            Sim.delay 0.0005
          done);
      Sim.delay 3600.0;
      check Alcotest.int "writers done" 2 !writers_done;
      check Alcotest.int "no torn multi-tree reads" 0 !violations)

(* ------------------------------------------------------------------ *)
(* Batched scans (fence-key continuation)                               *)
(* ------------------------------------------------------------------ *)

let scan_b tree ~batch ~from ~count = Ops.scan ~batch tree ~vctx_of:(tip tree) ~from ~count

let scan_counters env = Obs.scan (Cluster.obs env.cluster)

let test_batched_scan_matches_per_leaf mode () =
  (* Every batch size must return exactly the per-leaf sequence, and the
     batched path must actually run (batch rounds + continuations). *)
  Sim.run (fun () ->
      let env = make_env ~n:3 () in
      let tree = make_tree env ~mode ~max_keys:4 in
      Ops.Linear.init_tree tree;
      let rng = Sim.Rng.create 17 in
      for i = 0 to 249 do
        put tree (key (Sim.Rng.int rng 600)) (value i)
      done;
      let ss = scan_counters env in
      let batches_before = Obs.Counter.value ss.Obs.scan_batches in
      List.iter
        (fun (from, count) ->
          let oracle = scan_b tree ~batch:1 ~from ~count in
          List.iter
            (fun batch ->
              let got = scan_b tree ~batch ~from ~count in
              if got <> oracle then
                Alcotest.fail
                  (Printf.sprintf "batch=%d diverged from per-leaf at from=%S count=%d" batch
                     from count))
            [ 2; 4; 16; 64 ])
        [ ("", 1000); ("", 37); (key 100, 80); (key 300, 200); (key 599, 10); (key 600, 5) ];
      check Alcotest.bool "batch rounds ran" true
        (Obs.Counter.value ss.Obs.scan_batches > batches_before);
      check Alcotest.bool "continuations ran" true
        (Obs.Counter.value ss.Obs.scan_continuations > 0))

let test_batched_scan_crossing_concurrent_splits mode () =
  (* A batched scan runs while a second proxy splits and empties leaves
     under it. Every scan must return a correct prefix of the tree as of
     some serialization point: sorted, duplicate-free keys with the
     values some committed state held. *)
  Sim.run (fun () ->
      let env = make_env ~n:3 () in
      let t1 = make_tree env ~mode ~max_keys:4 ~cache:(Objcache.create ()) in
      Ops.Linear.init_tree t1;
      let t2 = make_tree env ~mode ~max_keys:4 ~cache:(Objcache.create ()) in
      for i = 0 to 199 do
        put t1 (key i) "base"
      done;
      (* Warm the scanner proxy's cache over the whole range. *)
      ignore (scan_b t2 ~batch:16 ~from:"" ~count:1000 : (string * string) list);
      let writer_done = ref false in
      Sim.spawn (fun () ->
          (* Interleave splits (fresh keys between existing ones) with
             removals that empty whole leaves. *)
          for i = 0 to 199 do
            put t1 (key i ^ "-mid") "split";
            if i mod 3 = 0 then ignore (remove t1 (key i) : bool)
          done;
          writer_done := true);
      let scans_ok = ref 0 in
      Sim.spawn (fun () ->
          while not !writer_done do
            let r = scan_b t2 ~batch:8 ~from:"" ~count:1000 in
            (* Keys strictly sorted (no duplicate, no out-of-order entry
               from a stale sibling) and every value one a committed
               state could hold. *)
            let rec sorted = function
              | (a, _) :: ((b, _) :: _ as tl) -> Bkey.compare a b < 0 && sorted tl
              | _ -> true
            in
            if not (sorted r) then Alcotest.fail "batched scan returned unsorted keys";
            List.iter
              (fun (_, v) ->
                if v <> "base" && v <> "split" then
                  Alcotest.fail ("batched scan saw impossible value " ^ v))
              r;
            incr scans_ok;
            Sim.delay 1e-4
          done);
      Sim.delay 3600.0;
      check Alcotest.bool "writer finished" true !writer_done;
      check Alcotest.bool "scans ran during the storm" true (!scans_ok > 0);
      (* Final state agrees between the reshaping proxy and the scanner
         in both batch modes. *)
      let final_batched = scan_b t2 ~batch:16 ~from:"" ~count:1000 in
      let final_per_leaf = scan_b t1 ~batch:1 ~from:"" ~count:1000 in
      check Alcotest.bool "final scans agree" true (final_batched = final_per_leaf);
      check Alcotest.int "final size" 333 (List.length final_batched))

let test_batched_scan_aborts_when_leaf_moves mode () =
  (* A leaf moving mid-batch: a writer keeps splitting tail leaves while
     a batched read-only scan (pinned at the tip version, so its leaf
     fetches are unvalidated single round trips) is in flight. A sibling
     fetched from the already-traversed parent then no longer starts
     where its left neighbour ended — the scan must abort that batch on
     the fence check (scan_batch_aborts) and retry to a clean result,
     never silently skip or repeat keys from a moved leaf. A wide
     internal fanout with a small batch size keeps many batch rounds in
     flight under one parent, which is exactly the stale window. *)
  Sim.run (fun () ->
      (* Wide internal nodes need room: a private env with 2KiB slots. *)
      let layout = Layout.make ~node_size:2048 ~max_slots:4096 ~max_trees:4 ~max_snapshots:256 () in
      let config =
        { Sinfonia.Config.default with heap_capacity = Layout.heap_capacity_needed layout }
      in
      let cluster = Cluster.create ~config ~n:2 () in
      let shared = Node_alloc.Shared.create ~n_memnodes:2 in
      let env = { cluster; layout; shared; cache = Objcache.create () } in
      let mk cache =
        let alloc = Node_alloc.create ~cluster ~layout ~shared () in
        Ops.make_tree ~mode ~max_keys_leaf:4 ~max_keys_internal:32 ~cluster ~layout ~tree_id:0
          ~alloc ~cache ()
      in
      let t1 = mk (Objcache.create ()) in
      Ops.Linear.init_tree t1;
      let t2 = mk (Objcache.create ()) in
      for i = 0 to 149 do
        put t1 (key (2 * i)) "v0"
      done;
      let ss = scan_counters env in
      let aborts_before = Obs.Counter.value ss.Obs.scan_batch_aborts in
      (* Writer: endless splits in the scan's tail region (fresh unique
         keys), so leaves keep moving while the scan is under way. *)
      let stop = ref false in
      let j = ref 0 in
      Sim.spawn (fun () ->
          while not !stop do
            incr j;
            put t1 (Printf.sprintf "%s-%06d" (key (201 + (!j mod 79))) !j) "v1";
            Sim.delay 1e-5
          done);
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as tl) -> Bkey.compare a b < 0 && sorted tl
        | _ -> true
      in
      let scan_pinned () =
        (* Pin the scan at the tip version: read-only, so batched leaf
           fetches take the dirty single-round-trip path in both modes. *)
        let sid, root = read_tip t2 in
        Ops.scan ~batch:4 t2
          ~vctx_of:(fun _txn -> Ops.Linear.at_snapshot t2 ~sid ~root)
          ~from:"" ~count:2000
      in
      let tries = ref 0 in
      while Obs.Counter.value ss.Obs.scan_batch_aborts = aborts_before && !tries < 200 do
        incr tries;
        match scan_pinned () with
        | r ->
            if not (sorted r) then Alcotest.fail "batched scan returned unsorted keys";
            List.iter
              (fun (_, v) ->
                if v <> "v0" && v <> "v1" then
                  Alcotest.fail ("batched scan saw impossible value " ^ v))
              r
        (* The scan can starve under this write rate; retry exhaustion
           is an abort, never a wrong answer. *)
        | exception Ops.Too_contended _ -> ()
      done;
      stop := true;
      check Alcotest.bool "mid-batch abort fired" true
        (Obs.Counter.value ss.Obs.scan_batch_aborts > aborts_before);
      (* Quiesced, both proxies and both batch modes agree exactly. *)
      Sim.delay 1.0;
      let expected = scan_b t1 ~batch:1 ~from:"" ~count:2000 in
      check Alcotest.bool "scan correct after leaf moves" true
        (scan_b t2 ~batch:16 ~from:"" ~count:2000 = expected))

let () =
  Alcotest.run "btree"
    [
      ( "layout",
        [
          Alcotest.test_case "regions disjoint" `Quick test_layout_regions_disjoint;
          Alcotest.test_case "slot mapping" `Quick test_layout_slot_mapping;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "unique round-robin" `Quick test_alloc_unique_and_round_robin;
          Alcotest.test_case "proxies disjoint" `Quick test_alloc_two_proxies_disjoint;
          Alcotest.test_case "free/reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
        ] );
      ( "ops",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "put/get single" `Quick test_put_get_single;
          Alcotest.test_case "overwrite" `Quick test_put_overwrite;
          Alcotest.test_case "many inserts with splits" `Quick test_many_inserts_with_splits;
          Alcotest.test_case "random order inserts" `Quick test_random_order_inserts;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "scan ranges" `Quick test_scan_ranges;
          Alcotest.test_case "model random ops" `Slow test_model_random_ops;
          Alcotest.test_case "scan matches model" `Quick test_scan_matches_model_random;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "stable scan" `Quick test_snapshot_scan_stable;
          Alcotest.test_case "snapshot chain" `Quick test_multiple_snapshots_chain;
          Alcotest.test_case "ids monotonic" `Quick test_snapshot_ids_monotonic;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "disjoint inserts" `Quick test_concurrent_disjoint_inserts;
          Alcotest.test_case "same-key updates" `Quick test_concurrent_same_key_updates;
          Alcotest.test_case "updates with snapshot" `Quick test_concurrent_updates_with_snapshot;
        ] );
      ( "modes",
        [
          Alcotest.test_case "validated basic" `Quick test_validated_mode_basic;
          Alcotest.test_case "validated stale cache" `Quick test_validated_mode_detects_stale_internal;
          Alcotest.test_case "modes agree" `Slow test_modes_agree;
        ] );
      ( "paper-anomalies",
        [
          Alcotest.test_case "fig2 unnecessary aborts" `Quick
            test_fig2_no_unnecessary_abort_with_dirty_traversals;
          Alcotest.test_case "fig3 fence keys" `Quick test_fig3_fence_keys_prevent_wrong_leaf;
        ] );
      ( "multi-tree",
        [
          Alcotest.test_case "basic" `Quick test_multi_tree_ops;
          Alcotest.test_case "atomicity" `Quick test_multi_tree_concurrent_atomicity;
        ] );
      ( "batched-scan",
        [
          Alcotest.test_case "matches per-leaf (dirty)" `Quick
            (test_batched_scan_matches_per_leaf Ops.Dirty_traversal);
          Alcotest.test_case "matches per-leaf (validated)" `Quick
            (test_batched_scan_matches_per_leaf Ops.Validated_traversal);
          Alcotest.test_case "concurrent splits/merges (dirty)" `Quick
            (test_batched_scan_crossing_concurrent_splits Ops.Dirty_traversal);
          Alcotest.test_case "concurrent splits/merges (validated)" `Quick
            (test_batched_scan_crossing_concurrent_splits Ops.Validated_traversal);
          Alcotest.test_case "mid-batch leaf move aborts (dirty)" `Quick
            (test_batched_scan_aborts_when_leaf_moves Ops.Dirty_traversal);
          Alcotest.test_case "mid-batch leaf move aborts (validated)" `Quick
            (test_batched_scan_aborts_when_leaf_moves Ops.Validated_traversal);
        ] );
    ]
