(* Tests for the discrete-event simulator substrate. *)

let check = Alcotest.check

let checkf msg expected actual =
  Alcotest.check (Alcotest.float 1e-9) msg expected actual

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_eq_ordering () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:3.0 "c";
  Sim.Event_queue.push q ~time:1.0 "a";
  Sim.Event_queue.push q ~time:2.0 "b";
  let pop () = match Sim.Event_queue.pop q with Some (_, v) -> v | None -> "-" in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  check Alcotest.bool "empty" true (Sim.Event_queue.is_empty q)

let test_eq_fifo_ties () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 99 do
    Sim.Event_queue.push q ~time:1.0 i
  done;
  for i = 0 to 99 do
    match Sim.Event_queue.pop q with
    | Some (_, v) -> check Alcotest.int "fifo" i v
    | None -> Alcotest.fail "queue drained early"
  done

let test_eq_interleaved () =
  let q = Sim.Event_queue.create () in
  let popped = ref [] in
  for i = 1 to 500 do
    Sim.Event_queue.push q ~time:(float_of_int (i mod 17)) i;
    if i mod 3 = 0 then
      match Sim.Event_queue.pop q with
      | Some (t, _) -> popped := t :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (t, _) ->
        popped := t :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  (* Each pop returns the minimum of what is in the queue at that moment,
     so after any interleaving the total pop count must match pushes. *)
  check Alcotest.int "count" 500 (List.length !popped)

let test_eq_peek () =
  let q = Sim.Event_queue.create () in
  check (Alcotest.option (Alcotest.float 0.0)) "empty peek" None (Sim.Event_queue.peek_time q);
  Sim.Event_queue.push q ~time:5.0 ();
  Sim.Event_queue.push q ~time:2.0 ();
  check (Alcotest.option (Alcotest.float 0.0)) "peek min" (Some 2.0) (Sim.Event_queue.peek_time q);
  check Alcotest.int "length" 2 (Sim.Event_queue.length q)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_rng_ranges () =
  let r = Sim.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "int out of range";
    let f = Sim.Rng.unit_float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range";
    let i = Sim.Rng.int_in r (-5) 5 in
    if i < -5 || i > 5 then Alcotest.fail "int_in out of range"
  done

let test_rng_int_covers () =
  let r = Sim.Rng.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 5000 do
    seen.(Sim.Rng.int r 10) <- true
  done;
  Array.iteri (fun i b -> check Alcotest.bool (Printf.sprintf "bucket %d hit" i) true b) seen

let test_rng_split_independent () =
  let parent = Sim.Rng.create 99 in
  let child = Sim.Rng.split parent in
  (* Child stream should not simply replay the parent stream. *)
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.bits64 parent = Sim.Rng.bits64 child then incr equal
  done;
  check Alcotest.bool "streams differ" true (!equal < 4)

let test_rng_exponential_mean () =
  let r = Sim.Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Sim.Rng.exponential r ~mean:2.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean close to 2" true (abs_float (mean -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let r = Sim.Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_delay_advances_clock () =
  let final = ref 0.0 in
  Sim.run (fun () ->
      checkf "starts at 0" 0.0 (Sim.now ());
      Sim.delay 1.5;
      checkf "after delay" 1.5 (Sim.now ());
      Sim.delay 0.5;
      final := Sim.now ());
  checkf "total" 2.0 !final

let test_spawn_interleaving () =
  let trace = ref [] in
  let log tag = trace := tag :: !trace in
  Sim.run (fun () ->
      Sim.spawn (fun () ->
          Sim.delay 2.0;
          log "b2");
      Sim.spawn (fun () ->
          Sim.delay 1.0;
          log "a1");
      log "main";
      Sim.delay 3.0;
      log "main3");
  check (Alcotest.list Alcotest.string) "order" [ "main"; "a1"; "b2"; "main3" ]
    (List.rev !trace)

let test_yield_fairness () =
  let trace = ref [] in
  Sim.run (fun () ->
      Sim.spawn (fun () -> trace := "child" :: !trace);
      Sim.yield ();
      trace := "main" :: !trace);
  check (Alcotest.list Alcotest.string) "child ran first" [ "child"; "main" ] (List.rev !trace)

let test_suspend_wake () =
  let wakener = ref None in
  let result = ref 0 in
  Sim.run (fun () ->
      Sim.spawn (fun () ->
          let v = Sim.suspend (fun wake -> wakener := Some wake) in
          result := v);
      Sim.delay 5.0;
      match !wakener with Some wake -> wake 42 | None -> Alcotest.fail "not registered");
  check Alcotest.int "woken with value" 42 !result

let test_suspend_double_wake_ignored () =
  let count = ref 0 in
  Sim.run (fun () ->
      let wakener = ref None in
      Sim.spawn (fun () ->
          let (_ : int) = Sim.suspend (fun wake -> wakener := Some wake) in
          incr count);
      Sim.delay 1.0;
      (match !wakener with
      | Some wake ->
          wake 1;
          wake 2
      | None -> Alcotest.fail "not registered");
      Sim.delay 1.0);
  check Alcotest.int "resumed once" 1 !count

let test_until_cutoff () =
  let reached = ref false in
  Sim.run ~until:10.0 (fun () ->
      Sim.delay 100.0;
      reached := true);
  check Alcotest.bool "event past until dropped" false !reached

let test_stop () =
  let after = ref false in
  Sim.run (fun () ->
      Sim.spawn (fun () ->
          Sim.delay 1.0;
          after := true);
      Sim.stop ());
  check Alcotest.bool "no events after stop" false !after

let test_no_nesting () =
  Sim.run (fun () ->
      match Sim.run (fun () -> ()) with
      | () -> Alcotest.fail "nested run should fail"
      | exception Invalid_argument _ -> ())

let test_outside_now_fails () =
  match Sim.now () with
  | (_ : float) -> Alcotest.fail "now() outside run should fail"
  | exception Invalid_argument _ -> ()

let test_exception_propagates () =
  match Sim.run (fun () -> Sim.spawn (fun () -> failwith "boom")) with
  | () -> Alcotest.fail "exception should propagate"
  | exception Failure msg -> check Alcotest.string "message" "boom" msg

let test_determinism () =
  let run_trace () =
    let trace = Buffer.create 128 in
    Sim.run ~seed:7 (fun () ->
        let r = Sim.Rng.split (Sim.rng ()) in
        for i = 1 to 5 do
          let me = i in
          Sim.spawn (fun () ->
              Sim.delay (Sim.Rng.float r 3.0);
              Buffer.add_string trace (Printf.sprintf "%d@%.6f;" me (Sim.now ())))
        done);
    Buffer.contents trace
  in
  check Alcotest.string "identical traces" (run_trace ()) (run_trace ())

(* ------------------------------------------------------------------ *)
(* Mailbox / Ivar / Semaphore                                          *)
(* ------------------------------------------------------------------ *)

let test_mailbox_buffered () =
  Sim.run (fun () ->
      let mb = Sim.Mailbox.create () in
      Sim.Mailbox.send mb 1;
      Sim.Mailbox.send mb 2;
      check Alcotest.int "len" 2 (Sim.Mailbox.length mb);
      check Alcotest.int "fifo 1" 1 (Sim.Mailbox.recv mb);
      check Alcotest.int "fifo 2" 2 (Sim.Mailbox.recv mb);
      check (Alcotest.option Alcotest.int) "empty" None (Sim.Mailbox.try_recv mb))

let test_mailbox_blocking_recv () =
  let got = ref (-1) in
  Sim.run (fun () ->
      let mb = Sim.Mailbox.create () in
      Sim.spawn (fun () -> got := Sim.Mailbox.recv mb);
      Sim.delay 1.0;
      check Alcotest.int "still blocked" (-1) !got;
      Sim.Mailbox.send mb 7;
      Sim.delay 0.0;
      Sim.yield ());
  check Alcotest.int "received" 7 !got

let test_mailbox_fifo_waiters () =
  let order = ref [] in
  Sim.run (fun () ->
      let mb = Sim.Mailbox.create () in
      for i = 1 to 3 do
        Sim.spawn (fun () ->
            let v = Sim.Mailbox.recv mb in
            order := (i, v) :: !order)
      done;
      Sim.delay 1.0;
      Sim.Mailbox.send mb 10;
      Sim.Mailbox.send mb 20;
      Sim.Mailbox.send mb 30;
      Sim.delay 1.0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "waiters FIFO"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !order)

let test_ivar () =
  let observed = ref [] in
  Sim.run (fun () ->
      let iv = Sim.Ivar.create () in
      check Alcotest.bool "not filled" false (Sim.Ivar.is_filled iv);
      for i = 1 to 3 do
        Sim.spawn (fun () ->
            let v = Sim.Ivar.read iv in
            observed := (i, v) :: !observed)
      done;
      Sim.delay 1.0;
      Sim.Ivar.fill iv 99;
      (match Sim.Ivar.fill iv 100 with
      | () -> Alcotest.fail "double fill should fail"
      | exception Invalid_argument _ -> ());
      Sim.delay 1.0;
      check Alcotest.int "read after fill" 99 (Sim.Ivar.read iv));
  check Alcotest.int "all woken" 3 (List.length !observed);
  List.iter (fun (_, v) -> check Alcotest.int "value" 99 v) !observed

let test_semaphore_limits_concurrency () =
  let active = ref 0 and peak = ref 0 in
  Sim.run (fun () ->
      let sem = Sim.Semaphore.create 2 in
      for _ = 1 to 10 do
        Sim.spawn (fun () ->
            Sim.Semaphore.with_acquired sem (fun () ->
                incr active;
                if !active > !peak then peak := !active;
                Sim.delay 1.0;
                decr active))
      done);
  check Alcotest.int "peak concurrency" 2 !peak

let test_mutex () =
  let in_critical = ref false in
  Sim.run (fun () ->
      let m = Sim.Mutex.create () in
      for _ = 1 to 5 do
        Sim.spawn (fun () ->
            Sim.Mutex.with_lock m (fun () ->
                check Alcotest.bool "exclusive" false !in_critical;
                in_critical := true;
                Sim.delay 0.5;
                in_critical := false))
      done)

(* ------------------------------------------------------------------ *)
(* Resource                                                            *)
(* ------------------------------------------------------------------ *)

let test_resource_serializes () =
  let finish_times = ref [] in
  Sim.run (fun () ->
      let r = Sim.Resource.create ~servers:1 () in
      for _ = 1 to 3 do
        Sim.spawn (fun () ->
            Sim.Resource.use r ~service_time:1.0;
            finish_times := Sim.now () :: !finish_times)
      done);
  check (Alcotest.list (Alcotest.float 1e-9)) "sequential completion" [ 1.0; 2.0; 3.0 ]
    (List.rev !finish_times)

let test_resource_parallel_servers () =
  let finish_times = ref [] in
  Sim.run (fun () ->
      let r = Sim.Resource.create ~servers:2 () in
      for _ = 1 to 4 do
        Sim.spawn (fun () ->
            Sim.Resource.use r ~service_time:1.0;
            finish_times := Sim.now () :: !finish_times)
      done);
  check (Alcotest.list (Alcotest.float 1e-9)) "two at a time" [ 1.0; 1.0; 2.0; 2.0 ]
    (List.rev !finish_times)

let test_resource_utilization () =
  Sim.run (fun () ->
      let r = Sim.Resource.create ~servers:1 () in
      Sim.Resource.use r ~service_time:2.0;
      Sim.delay 2.0;
      (* busy 2s of 4s elapsed *)
      let u = Sim.Resource.utilization r ~since:0.0 in
      check (Alcotest.float 1e-6) "utilization 0.5" 0.5 u)

let test_resource_queue_length () =
  Sim.run (fun () ->
      let r = Sim.Resource.create ~servers:1 () in
      for _ = 1 to 3 do
        Sim.spawn (fun () -> Sim.Resource.use r ~service_time:1.0)
      done;
      Sim.delay 0.5;
      check Alcotest.int "two waiting" 2 (Sim.Resource.queue_length r);
      check Alcotest.int "one busy" 1 (Sim.Resource.busy r))

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)
(* ------------------------------------------------------------------ *)

let test_net_delay_positive () =
  Sim.run (fun () ->
      let net = Sim.Net.create ~rng:(Sim.Rng.create 1) () in
      let t0 = Sim.now () in
      Sim.Net.transfer net ~bytes:1000;
      check Alcotest.bool "time advanced" true (Sim.now () > t0);
      check Alcotest.int "message counted" 1 (Sim.Net.messages_sent net);
      check Alcotest.int "bytes counted" 1000 (Sim.Net.bytes_sent net))

let test_net_size_dependence () =
  let net = Sim.Net.create ~jitter:0.0 ~rng:(Sim.Rng.create 1) () in
  let small = Sim.Net.sample_one_way net ~bytes:100 in
  let large = Sim.Net.sample_one_way net ~bytes:1_000_000 in
  check Alcotest.bool "larger message slower" true (large > small)

let test_net_fault_latency () =
  Sim.run (fun () ->
      let net = Sim.Net.create ~jitter:0.0 ~rng:(Sim.Rng.create 1) () in
      let timed f =
        let t0 = Sim.now () in
        f ();
        Sim.now () -. t0
      in
      let base = timed (fun () -> Sim.Net.transfer net ~src:0 ~dst:1 ~bytes:100) in
      Sim.Net.set_fault net ~src:0 ~dst:1 ~extra_latency:0.01 ();
      check Alcotest.int "one fault installed" 1 (Sim.Net.active_faults net);
      checkf "extra latency added" (base +. 0.01)
        (timed (fun () -> Sim.Net.transfer net ~src:0 ~dst:1 ~bytes:100));
      (* Faults are directional: the reverse link is untouched. *)
      checkf "reverse link clean" base
        (timed (fun () -> Sim.Net.transfer net ~src:1 ~dst:0 ~bytes:100));
      Sim.Net.clear_fault net ~src:0 ~dst:1;
      checkf "cleared fault costs nothing" base
        (timed (fun () -> Sim.Net.transfer net ~src:0 ~dst:1 ~bytes:100)))

let test_net_fault_drop () =
  Sim.run (fun () ->
      let rto = 1e-3 in
      let net = Sim.Net.create ~jitter:0.0 ~rto ~rng:(Sim.Rng.create 7) () in
      Sim.Net.set_fault net ~src:0 ~dst:1 ~drop:0.9 ();
      let t0 = Sim.now () in
      for _ = 1 to 20 do
        Sim.Net.transfer net ~src:0 ~dst:1 ~bytes:100
      done;
      let elapsed = Sim.now () -. t0 in
      check Alcotest.bool "some transmissions dropped" true (Sim.Net.drops net > 0);
      check Alcotest.bool "each drop costs one rto" true
        (elapsed > float_of_int (Sim.Net.drops net) *. rto);
      (* Every delivery eventually succeeds: lossy links delay, never cut. *)
      check Alcotest.bool "retransmissions counted" true
        (Sim.Net.messages_sent net = 20 + Sim.Net.drops net))

let test_net_fault_blocked () =
  let net = Sim.Net.create ~rng:(Sim.Rng.create 1) () in
  check Alcotest.bool "initially reachable" true (Sim.Net.reachable net ~src:0 ~dst:1);
  Sim.Net.set_fault net ~src:0 ~dst:1 ~blocked:true ();
  check Alcotest.bool "blocked" false (Sim.Net.reachable net ~src:0 ~dst:1);
  check Alcotest.bool "reverse direction open" true (Sim.Net.reachable net ~src:1 ~dst:0);
  (* Installing an all-benign fault removes the table entry entirely. *)
  Sim.Net.set_fault net ~src:0 ~dst:1 ();
  check Alcotest.int "benign fault clears entry" 0 (Sim.Net.active_faults net);
  Sim.Net.set_fault net ~src:2 ~dst:3 ~blocked:true ();
  Sim.Net.set_fault net ~src:4 ~dst:5 ~drop:0.5 ();
  Sim.Net.clear_all_faults net;
  check Alcotest.int "clear_all" 0 (Sim.Net.active_faults net);
  check Alcotest.bool "reachable again" true (Sim.Net.reachable net ~src:2 ~dst:3)

let test_net_anonymous_unfaulted () =
  Sim.run (fun () ->
      let net = Sim.Net.create ~jitter:0.0 ~rng:(Sim.Rng.create 1) () in
      Sim.Net.set_fault net ~src:0 ~dst:1 ~drop:0.9 ~extra_latency:1.0 ~blocked:true ();
      let t0 = Sim.now () in
      Sim.Net.transfer net ~bytes:100;
      (* Anonymous transfers never consult the fault table. *)
      check Alcotest.bool "no extra latency" true (Sim.now () -. t0 < 0.5);
      check Alcotest.int "no drops" 0 (Sim.Net.drops net))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let c = Sim.Stats.Counter.create () in
  Sim.Stats.Counter.incr c;
  Sim.Stats.Counter.add c 4;
  check Alcotest.int "value" 5 (Sim.Stats.Counter.value c);
  Sim.Stats.Counter.reset c;
  check Alcotest.int "reset" 0 (Sim.Stats.Counter.value c)

let test_hist_basic () =
  let h = Sim.Stats.Hist.create () in
  check (Alcotest.float 0.0) "empty mean" 0.0 (Sim.Stats.Hist.mean h);
  List.iter (Sim.Stats.Hist.add h) [ 0.001; 0.002; 0.003; 0.004 ];
  check Alcotest.int "count" 4 (Sim.Stats.Hist.count h);
  check (Alcotest.float 1e-9) "mean" 0.0025 (Sim.Stats.Hist.mean h);
  check (Alcotest.float 1e-9) "min" 0.001 (Sim.Stats.Hist.min h);
  check (Alcotest.float 1e-9) "max" 0.004 (Sim.Stats.Hist.max h)

let test_hist_quantiles () =
  let h = Sim.Stats.Hist.create () in
  for i = 1 to 1000 do
    Sim.Stats.Hist.add h (float_of_int i /. 1000.0)
  done;
  let p50 = Sim.Stats.Hist.quantile h 0.5 in
  let p95 = Sim.Stats.Hist.quantile h 0.95 in
  let p99 = Sim.Stats.Hist.quantile h 0.99 in
  check Alcotest.bool "p50 near 0.5" true (abs_float (p50 -. 0.5) < 0.03);
  check Alcotest.bool "p95 near 0.95" true (abs_float (p95 -. 0.95) < 0.05);
  check Alcotest.bool "p99 near 0.99" true (abs_float (p99 -. 0.99) < 0.05);
  check Alcotest.bool "monotone" true (p50 <= p95 && p95 <= p99)

(* The p999 must resolve a tail two orders of magnitude above the bulk:
   99.7% fast ops at ~1ms, 0.3% stragglers at 1s (safely above the
   0.1% boundary). The geometric buckets (gamma = 1.04) give ~4%
   relative error, so p99 stays near the bulk while p999 lands on the
   stragglers. *)
let test_hist_p999_tail_resolution () =
  let h = Sim.Stats.Hist.create () in
  for _round = 1 to 10 do
    for i = 1 to 997 do
      Sim.Stats.Hist.add h (0.001 +. (0.000001 *. float_of_int i))
    done;
    for _ = 1 to 3 do
      Sim.Stats.Hist.add h 1.0
    done
  done;
  let p99 = Sim.Stats.Hist.quantile h 0.99 in
  let p999 = Sim.Stats.Hist.p999 h in
  check Alcotest.bool "p99 in the bulk" true (p99 < 0.01);
  check Alcotest.bool "p999 sees the stragglers" true
    (abs_float (p999 -. 1.0) /. 1.0 < 0.05);
  check Alcotest.bool "ordered" true (p99 <= p999);
  check Alcotest.bool "p999 below max" true (p999 <= Sim.Stats.Hist.max h)

let test_hist_merge () =
  let a = Sim.Stats.Hist.create () and b = Sim.Stats.Hist.create () in
  Sim.Stats.Hist.add a 1.0;
  Sim.Stats.Hist.add b 3.0;
  Sim.Stats.Hist.merge_into ~dst:a b;
  check Alcotest.int "merged count" 2 (Sim.Stats.Hist.count a);
  check (Alcotest.float 1e-9) "merged mean" 2.0 (Sim.Stats.Hist.mean a);
  check (Alcotest.float 1e-9) "merged max" 3.0 (Sim.Stats.Hist.max a)

let test_moments () =
  let m = Sim.Stats.Moments.create () in
  List.iter (Sim.Stats.Moments.add m) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Sim.Stats.Moments.mean m);
  check Alcotest.bool "stddev" true (abs_float (Sim.Stats.Moments.stddev m -. 2.138) < 0.01)

let test_series () =
  let s = Sim.Stats.Series.create ~width:1.0 in
  Sim.Stats.Series.add s ~time:0.5 1;
  Sim.Stats.Series.add s ~time:0.9 1;
  Sim.Stats.Series.add s ~time:2.5 3;
  let buckets = Sim.Stats.Series.buckets s in
  check Alcotest.int "bucket count" 3 (Array.length buckets);
  let times = Array.map fst buckets and counts = Array.map snd buckets in
  check (Alcotest.array (Alcotest.float 1e-9)) "times" [| 0.0; 1.0; 2.0 |] times;
  check (Alcotest.array Alcotest.int) "counts" [| 2; 0; 3 |] counts

let test_metrics () =
  let m = Sim.Metrics.create () in
  (* This test exercises the raw string-keyed Metrics surface itself. *)
  Sim.Metrics.incr m "aborts" (* lint: allow stringly-metrics *);
  Sim.Metrics.incr m "aborts" (* lint: allow stringly-metrics *);
  Sim.Metrics.add m "messages" 10 (* lint: allow stringly-metrics *);
  Sim.Metrics.observe m "latency" 0.001 (* lint: allow stringly-metrics *);
  check Alcotest.int "counter" 2 (Sim.Metrics.counter_value m "aborts");
  check Alcotest.int "missing counter" 0 (Sim.Metrics.counter_value m "nope");
  check Alcotest.int "hist count" 1 (Sim.Stats.Hist.count (Sim.Metrics.hist m "latency"));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted counters"
    [ ("aborts", 2); ("messages", 10) ]
    (Sim.Metrics.counters m)

let () =
  Alcotest.run "sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_eq_interleaved;
          Alcotest.test_case "peek/length" `Quick test_eq_peek;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
          Alcotest.test_case "spawn interleaving" `Quick test_spawn_interleaving;
          Alcotest.test_case "yield fairness" `Quick test_yield_fairness;
          Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
          Alcotest.test_case "double wake ignored" `Quick test_suspend_double_wake_ignored;
          Alcotest.test_case "until cutoff" `Quick test_until_cutoff;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "no nesting" `Quick test_no_nesting;
          Alcotest.test_case "outside now fails" `Quick test_outside_now_fails;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "deterministic replay" `Quick test_determinism;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "mailbox buffered" `Quick test_mailbox_buffered;
          Alcotest.test_case "mailbox blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "mailbox fifo waiters" `Quick test_mailbox_fifo_waiters;
          Alcotest.test_case "ivar" `Quick test_ivar;
          Alcotest.test_case "semaphore" `Quick test_semaphore_limits_concurrency;
          Alcotest.test_case "mutex" `Quick test_mutex;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serializes" `Quick test_resource_serializes;
          Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "queue length" `Quick test_resource_queue_length;
        ] );
      ( "net",
        [
          Alcotest.test_case "delay positive" `Quick test_net_delay_positive;
          Alcotest.test_case "size dependence" `Quick test_net_size_dependence;
          Alcotest.test_case "fault latency" `Quick test_net_fault_latency;
          Alcotest.test_case "fault drop" `Quick test_net_fault_drop;
          Alcotest.test_case "fault blocked" `Quick test_net_fault_blocked;
          Alcotest.test_case "anonymous unfaulted" `Quick test_net_anonymous_unfaulted;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "hist basic" `Quick test_hist_basic;
          Alcotest.test_case "hist quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "hist p999 tail resolution" `Quick test_hist_p999_tail_resolution;
          Alcotest.test_case "hist merge" `Quick test_hist_merge;
          Alcotest.test_case "moments" `Quick test_moments;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
    ]
