(* The benchmark harness.

   Part 1 — bechamel micro-benchmarks of the core data structures
   (wall-clock costs of the building blocks the simulation runs on).

   Part 2 — the paper's evaluation: every figure of Sec. 6, reproduced
   at scaled-down "fast" parameters. `bin/minuet_bench` exposes the same
   experiments with full parameter control (including --full). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let bench_node_encode =
  let node =
    Btree.Bnode.make_leaf ~low:Btree.Bkey.Neg_inf ~high:Btree.Bkey.Pos_inf ~snap:3L
      (Array.init 64 (fun i -> (Printf.sprintf "u%013d" i, "valuebyte")))
  in
  Test.make ~name:"bnode encode (64-key leaf)" (Staged.stage (fun () -> Btree.Bnode.encode node))

let bench_node_decode =
  let payload =
    Btree.Bnode.encode
      (Btree.Bnode.make_leaf ~low:Btree.Bkey.Neg_inf ~high:Btree.Bkey.Pos_inf ~snap:3L
         (Array.init 64 (fun i -> (Printf.sprintf "u%013d" i, "valuebyte"))))
  in
  Test.make ~name:"bnode decode (64-key leaf)" (Staged.stage (fun () -> Btree.Bnode.decode payload))

let bench_leaf_insert =
  let node =
    Btree.Bnode.make_leaf ~low:Btree.Bkey.Neg_inf ~high:Btree.Bkey.Pos_inf ~snap:0L
      (Array.init 64 (fun i -> (Printf.sprintf "u%013d" (2 * i), "v")))
  in
  Test.make ~name:"bnode leaf_insert"
    (Staged.stage (fun () -> Btree.Bnode.leaf_insert node "u0000000000033" "w"))

let bench_crc32 =
  let payload = String.make 1024 'x' in
  Test.make ~name:"codec crc32 (1KiB)" (Staged.stage (fun () -> Codec.crc32 payload))

let bench_rng =
  let rng = Sim.Rng.create 42 in
  Test.make ~name:"rng bits64" (Staged.stage (fun () -> Sim.Rng.bits64 rng))

let bench_hist =
  let h = Sim.Stats.Hist.create () in
  Test.make ~name:"stats hist add" (Staged.stage (fun () -> Sim.Stats.Hist.add h 0.00042))

let bench_cache =
  let cache = Dyntxn.Objcache.create ~capacity:1024 () in
  let refs =
    Array.init 512 (fun i ->
        Dyntxn.Objref.make ~addr:(Sinfonia.Address.make ~node:0 ~off:(i * 1024)) ~len:1024)
  in
  Array.iter
    (fun r -> Dyntxn.Objcache.insert cache r { Dyntxn.Objcache.seq = 1L; payload = "x" })
    refs;
  let i = ref 0 in
  Test.make ~name:"objcache find (hit)"
    (Staged.stage (fun () ->
         i := (!i + 1) land 511;
         Dyntxn.Objcache.find cache refs.(!i)))

let bench_sim_event_queue =
  Test.make ~name:"event queue push+pop (64)"
    (Staged.stage (fun () ->
         let q = Sim.Event_queue.create () in
         for i = 0 to 63 do
           Sim.Event_queue.push q ~time:(float_of_int (i * 7 mod 13)) i
         done;
         let rec drain () = match Sim.Event_queue.pop q with Some _ -> drain () | None -> () in
         drain ()))

let bench_simulated_op =
  (* End-to-end: boot a small simulated cluster and run one put+get
     (includes scheduler, codec, protocol stack). *)
  let counter = ref 0 in
  Test.make ~name:"simulated cluster put+get"
    (Staged.stage (fun () ->
         incr counter;
         let config = Minuet.Config.small_tree { Minuet.Config.default with hosts = 2 } in
         Minuet.Harness.run ~seed:!counter ~config (fun db ->
             let s = Minuet.Session.attach db in
             Minuet.Session.put s "key" "value";
             ignore (Minuet.Session.get s "key" : string option))))

let run_micro_benchmarks () =
  print_endline "=== micro-benchmarks (bechamel, wall-clock) ===";
  let tests =
    [
      bench_node_encode;
      bench_node_decode;
      bench_leaf_insert;
      bench_crc32;
      bench_rng;
      bench_hist;
      bench_cache;
      bench_sim_event_queue;
      bench_simulated_op;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-36s %12.1f ns/op\n%!" name est
          | _ -> Printf.printf "%-36s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Streaming serializability checker                                    *)
(* ------------------------------------------------------------------ *)

(* Million-event synthetic histories through Check.Stream (DESIGN.md
   §14): wall-clock throughput and peak live heap, linear and
   branching. The CI-gated variant with heap budget and falsifiability
   injection lives in `minuet-bench checker`. *)
let run_checker_bench () =
  print_endline "\n=== streaming serializability checker (Check.Stream) ===";
  List.iter
    (fun branching ->
      let cfg = { Chaos.Histgen.default with Chaos.Histgen.branching } in
      let stream = Check.Stream.create Check.Stream.Config.default in
      let peak = ref 0 in
      let fed = ref 0 in
      let t0 = Unix.gettimeofday () (* lint: allow wallclock-rng *) in
      let gen =
        Chaos.Histgen.generate
          ~on_creation:(fun ~index ~sid ~stamp ->
            Check.Stream.add_creation stream ~index ~sid ~stamp)
          cfg
          (fun ev ->
            Check.Stream.feed stream ev;
            incr fed;
            if !fed mod 100_000 = 0 then begin
              Gc.full_major ();
              peak := max !peak (Gc.stat ()).Gc.live_words
            end)
      in
      let verdict = Check.Stream.finish ~final:gen.Chaos.Histgen.gen_final stream in
      let dt = Unix.gettimeofday () -. t0 (* lint: allow wallclock-rng *) in
      if not (Check.Stream.ok verdict) then
        failwith "clean synthetic history failed the streaming checker";
      Printf.printf "%-10s %7d events in %5.2fs  %8.0f ops/sec  peak live %9d words\n%!"
        (if branching then "branching" else "linear")
        !fed dt
        (float_of_int !fed /. dt)
        !peak)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* The paper's figures                                                  *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  print_endline "\n=== paper experiments (simulated cluster, fast parameters) ===";
  print_endline
    "(regenerate any figure with full control: dune exec bin/minuet_bench.exe -- <figN> --help)";
  let params = Experiments.Exp_common.fast in
  List.iter
    (fun ((name, _, run) :
           string
           * string
           * (?params:Experiments.Exp_common.params -> unit -> Experiments.Exp_common.row list)) ->
      (* Host-side progress timing for the operator, outside any
         simulation; nothing seeded depends on it. *)
      let t0 = Unix.gettimeofday () (* lint: allow wallclock-rng *) in
      let (_ : Experiments.Exp_common.row list) = run ~params () in
      Printf.printf "[%s done in %.0fs]\n%!" name
        (Unix.gettimeofday () -. t0) (* lint: allow wallclock-rng *))
    Experiments.all

let () =
  let micro_only = Array.exists (( = ) "--micro-only") Sys.argv in
  let figures_only = Array.exists (( = ) "--figures-only") Sys.argv in
  if not figures_only then run_micro_benchmarks ();
  if not figures_only then run_checker_bench ();
  if not micro_only then run_figures ();
  (* End-to-end observability report: latency quantiles per operation
     and the abort taxonomy, as machine-readable JSON. *)
  let report = Experiments.Exp_common.run_observed ~name:"main" () in
  Printf.printf "\nobservability report written to %s\n%!" report
